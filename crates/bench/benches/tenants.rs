//! B16: multi-tenant sharding — the PR-8 tenancy tentpole.
//!
//! Two experiments against an in-process [`ShardMap`], results written to
//! `BENCH_8.json` at the workspace root:
//!
//! * `ingest_scaling` — a **fixed total load** of `log` requests split
//!   evenly across {1, 8, 64} tenants, one driver thread per tenant. The
//!   claim under test: tenants ingest on independent shard locks, so
//!   aggregate throughput *rises* with tenant count (toward the core
//!   count) instead of serializing on a global mutex. Each row records
//!   the aggregate q/s and the speedup over the single-tenant baseline,
//!   and every run ends with a leakage gate: each tenant's `log_len`
//!   must equal exactly its own slice of the load.
//! * `recovery_100_tenants` — a durable fleet of 100 tenants (plus the
//!   default) is built, shut down cleanly, and reopened with
//!   [`ShardMap::open`]; the row records the wall-clock recovery time,
//!   tenants and records recovered, asserting zero degraded tenants.
//!
//! Run `cargo bench -p audex-bench --bench tenants` for real measurements
//! or `-- --test` for the CI smoke variant (tiny sizes).

use std::fmt::Write as _;
use std::time::Instant;

use audex_persist::WalOptions;
use audex_service::{
    FleetConfig, Json, Request, Routed, ServiceConfig, ServiceCore, ShardMap, DEFAULT_TENANT,
};
use audex_sql::Timestamp;
use audex_storage::Database;

struct Config {
    tenant_counts: Vec<usize>,
    /// Total `log` requests per ingest row, split across the tenants.
    total_queries: usize,
    recovery_tenants: usize,
    /// `log` requests journaled per tenant in the recovery experiment.
    recovery_queries: usize,
}

fn config(quick: bool) -> Config {
    if quick {
        Config {
            tenant_counts: vec![1, 8],
            total_queries: 640,
            recovery_tenants: 16,
            recovery_queries: 4,
        }
    } else {
        Config {
            tenant_counts: vec![1, 8, 64],
            total_queries: 12_800,
            recovery_tenants: 100,
            recovery_queries: 16,
        }
    }
}

/// Drives one request through the fleet exactly like a connection handler:
/// fleet ops answered inline, data-plane requests under the shard's lock.
fn fleet_request(fleet: &ShardMap, tenant: Option<&str>, req: Request) -> Json {
    match fleet.route(tenant, req) {
        Routed::Reply(resp) | Routed::Shutdown(resp) => resp,
        Routed::Shard(shard, req) => shard.lock().handle(req).response,
    }
}

fn assert_ok(resp: &Json, what: &str) {
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{what}: {resp}");
}

fn stat(stats: &Json, field: &str) -> i64 {
    stats.get(field).and_then(Json::as_int).unwrap_or_else(|| panic!("no {field} in {stats}"))
}

/// Schema + seed rows + one standing audit, the per-tenant fixture.
fn seed_tenant(fleet: &ShardMap, tenant: &str) {
    let dml = Request::Dml {
        ts: Timestamp(100),
        sql: "CREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR); \
              INSERT INTO p VALUES ('jane','145568','flu'), ('lucy','188888','malaria');"
            .into(),
    };
    assert_ok(&fleet_request(fleet, Some(tenant), dml), "seed dml");
    let register = Request::Register {
        name: "snoop".into(),
        expr: "AUDIT disease FROM p WHERE zipcode='145568'".into(),
        now: Some(Timestamp(1_000_000)),
    };
    assert_ok(&fleet_request(fleet, Some(tenant), register), "seed register");
}

fn log_request(i: usize) -> Request {
    Request::Log {
        ts: Timestamp(1_000 + i as i64),
        user: format!("u-{}", i % 17),
        role: "clerk".into(),
        purpose: "marketing".into(),
        sql: "SELECT disease FROM p WHERE zipcode = '145568'".into(),
    }
}

// --- Experiment 1: fixed total load vs tenant count. --------------------

struct IngestRow {
    tenants: usize,
    queries: usize,
    secs: f64,
    qps: f64,
}

fn ingest_scaling(tenants: usize, total_queries: usize) -> IngestRow {
    let fleet = ShardMap::single(ServiceCore::new(Database::new(), ServiceConfig::default()));
    let names: Vec<String> = (0..tenants).map(|i| format!("org-{i:02}")).collect();
    for name in &names {
        let resp = fleet_request(&fleet, None, Request::CreateTenant { name: name.clone() });
        assert_ok(&resp, "create-tenant");
        seed_tenant(&fleet, name);
    }

    let per_tenant = total_queries / tenants;
    let t = Instant::now();
    std::thread::scope(|scope| {
        for name in &names {
            let fleet = &fleet;
            scope.spawn(move || {
                for i in 0..per_tenant {
                    let resp = fleet_request(fleet, Some(name), log_request(i));
                    assert_ok(&resp, "log");
                }
            });
        }
    });
    let secs = t.elapsed().as_secs_f64();
    let queries = per_tenant * tenants;
    let qps = if secs > 0.0 { queries as f64 / secs } else { 0.0 };

    // Leakage gate: every shard holds exactly its own slice, the default
    // tenant none.
    for name in &names {
        let stats = fleet_request(&fleet, Some(name), Request::Stats);
        assert_eq!(stat(&stats, "log_len"), per_tenant as i64, "tenant {name} log drifted");
    }
    let stats = fleet_request(&fleet, None, Request::Stats);
    assert_eq!(stat(&stats, "log_len"), 0, "default tenant leaked ingest");
    IngestRow { tenants, queries, secs, qps }
}

// --- Experiment 2: 100-tenant fleet recovery time. ----------------------

struct RecoveryRow {
    tenants: usize,
    records: u64,
    secs: f64,
}

fn recovery_time(cfg: &Config) -> RecoveryRow {
    let dir = std::env::temp_dir().join(format!("audex-bench-tenants-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fleet_cfg = FleetConfig {
        service: ServiceConfig::default(),
        default_tenant: DEFAULT_TENANT.into(),
        data_dir: dir.clone(),
        wal: WalOptions::default(),
    };
    let (fleet, _) = ShardMap::open(&fleet_cfg).expect("open fresh fleet");
    for i in 0..cfg.recovery_tenants {
        let name = format!("org-{i:03}");
        assert_ok(
            &fleet_request(&fleet, None, Request::CreateTenant { name: name.clone() }),
            "create-tenant",
        );
        seed_tenant(&fleet, &name);
        for q in 0..cfg.recovery_queries {
            assert_ok(&fleet_request(&fleet, Some(&name), log_request(q)), "log");
        }
    }
    let resp = fleet_request(&fleet, None, Request::Shutdown);
    assert_ok(&resp, "shutdown");
    drop(fleet);

    let t = Instant::now();
    let (fleet, recovery) = ShardMap::open(&fleet_cfg).expect("reopen fleet");
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(fleet.tenant_count(), cfg.recovery_tenants + 1, "tenants lost in recovery");
    let degraded: Vec<&str> =
        recovery.tenants.iter().filter(|t| t.error.is_some()).map(|t| t.tenant.as_str()).collect();
    assert!(degraded.is_empty(), "degraded tenants after clean shutdown: {degraded:?}");
    let records: u64 = recovery.tenants.iter().map(|t| t.records).sum();
    // Each tenant journaled: 2 DML statements + 1 register + the logs.
    let per_tenant = (3 + cfg.recovery_queries) as u64;
    assert!(
        records >= per_tenant * cfg.recovery_tenants as u64,
        "only {records} records recovered"
    );
    drop(fleet);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryRow { tenants: cfg.recovery_tenants, records, secs }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    let mut baseline_qps = 0.0f64;
    let mut best_speedup = 0.0f64;
    for &tenants in &cfg.tenant_counts {
        let row = ingest_scaling(tenants, cfg.total_queries);
        if row.tenants == 1 {
            baseline_qps = row.qps;
        }
        let speedup = if baseline_qps > 0.0 { row.qps / baseline_qps } else { 0.0 };
        best_speedup = best_speedup.max(speedup);
        println!(
            "ingest_scaling tenants={} queries={} secs={:.4} qps={:.0} speedup_vs_1={speedup:.2}",
            row.tenants, row.queries, row.secs, row.qps
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"ingest_scaling\", \"tenants\": {}, \"queries\": {}, \
             \"secs\": {:.6}, \"qps\": {:.1}, \"speedup_vs_1_tenant\": {speedup:.3}}},",
            row.tenants, row.queries, row.secs, row.qps
        );
    }

    let rec = recovery_time(&cfg);
    println!(
        "recovery_100_tenants tenants={} records={} secs={:.4}",
        rec.tenants, rec.records, rec.secs
    );
    let _ = writeln!(
        rows,
        "    {{\"experiment\": \"recovery_100_tenants\", \"tenants\": {}, \"records\": {}, \
         \"secs\": {:.6}}},",
        rec.tenants, rec.records, rec.secs
    );

    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"tenants\",\n  \"mode\": \"{}\",\n  \
         \"best_ingest_speedup_vs_1_tenant\": {best_speedup:.3},\n  \
         \"recovery_secs_at_{}_tenants\": {:.4},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        rec.tenants,
        rec.secs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path, &json).expect("write BENCH_8.json");
    println!("wrote {path}");
    println!(
        "splitting a fixed load across tenants reached {best_speedup:.2}x the single-tenant \
         throughput; {} tenants recovered in {:.3}s",
        rec.tenants, rec.secs
    );
}
