//! B13: telemetry overhead — the PR-5 obs tentpole.
//!
//! Two experiments, results written to `BENCH_5.json` at the workspace root:
//!
//! * `audit_wallclock` — the full audit pipeline with telemetry attached
//!   (live registry + tracer recording every phase) vs the default
//!   disconnected `EngineObs` (every span and histogram a no-op).
//!   Rounds are interleaved A/B and the minimum per arm is compared, so
//!   the reported overhead is machine-noise-resistant. The acceptance
//!   target is < 3% overhead; in practice an audit records a handful of
//!   spans and histogram samples against milliseconds of evaluation, so
//!   the measured figure should sit well under 1%.
//! * `hot_path_ns` — the raw per-update cost a `par_map` worker pays:
//!   one counter inc and one histogram observe, enabled vs no-op.
//!
//! Run `cargo bench -p audex-bench --bench obs` for real measurements or
//! `-- --test` for the CI smoke variant.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use audex_bench::{all_time, scenario, Scenario};
use audex_core::{EngineObs, EngineOptions};
use audex_obs::{Counter, Histogram, Registry, Tracer, DURATION_BUCKETS};

struct Config {
    patients: usize,
    queries: usize,
    rounds: usize,
    iters: usize,
    hot_ops: usize,
}

fn config(quick: bool) -> Config {
    if quick {
        // Samples must stay well above scheduler noise (~tens of ms) or
        // the overhead ratio measures jitter, not telemetry.
        Config { patients: 150, queries: 150, rounds: 9, iters: 8, hot_ops: 100_000 }
    } else {
        Config { patients: 300, queries: 300, rounds: 7, iters: 4, hot_ops: 5_000_000 }
    }
}

/// Wall-clock for `iters` full audits, with or without live telemetry.
fn run_audits(sc: &Scenario, obs: Option<&(Arc<Registry>, Arc<Tracer>)>, iters: usize) -> f64 {
    let mut engine = sc.engine(EngineOptions::default());
    if let Some((registry, tracer)) = obs {
        engine = engine.with_obs(EngineObs::new(Arc::clone(registry), Arc::clone(tracer)));
    }
    let expr = all_time(sc.audit.clone());
    let t = Instant::now();
    for _ in 0..iters {
        let report = engine.audit_at(&expr, sc.now).expect("audit succeeds");
        std::hint::black_box(report.verdict.suspicious);
    }
    t.elapsed().as_secs_f64()
}

/// Nanoseconds per (counter inc + histogram observe) pair.
fn hot_path_ns(counter: &Counter, histogram: &Histogram, ops: usize) -> f64 {
    let t = Instant::now();
    for i in 0..ops {
        counter.inc();
        histogram.observe((i & 0xff) as f64 * 1e-4);
    }
    t.elapsed().as_secs_f64() * 1e9 / ops as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    // --- Experiment 1: audit wall-clock, telemetry on vs off. -----------
    let sc = scenario(cfg.patients, cfg.queries, 0.1, 42);
    let obs = (Registry::new(), Tracer::new());
    // Warm both arms (snapshot cache, allocator) before measuring.
    run_audits(&sc, None, 1);
    run_audits(&sc, Some(&obs), 1);

    let (mut off_min, mut on_min) = (f64::INFINITY, f64::INFINITY);
    for round in 0..cfg.rounds {
        let off = run_audits(&sc, None, cfg.iters);
        let on = run_audits(&sc, Some(&obs), cfg.iters);
        // The tracer's ring buffers cap themselves; draining between
        // rounds keeps the "on" arm from measuring a permanently full ring.
        let span_count = obs.1.take_events().len();
        off_min = off_min.min(off);
        on_min = on_min.min(on);
        println!(
            "audit_wallclock round={round} iters={} off_secs={off:.4} on_secs={on:.4} \
             spans={span_count}",
            cfg.iters
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"audit_wallclock\", \"round\": {round}, \
             \"iters\": {}, \"off_secs\": {off:.6}, \"on_secs\": {on:.6}, \
             \"spans_recorded\": {span_count}}},",
            cfg.iters
        );
    }
    let overhead_pct = if off_min > 0.0 { (on_min - off_min) / off_min * 100.0 } else { 0.0 };

    // --- Experiment 2: the hot-path update cost, enabled vs no-op. ------
    let registry = Registry::new();
    let live_counter = registry.counter("bench_hot_total", "Hot-path probe.", &[("arm", "live")]);
    let live_hist =
        registry.histogram("bench_hot_seconds", "Hot-path probe.", &DURATION_BUCKETS, &[]);
    let live_ns = hot_path_ns(&live_counter, &live_hist, cfg.hot_ops);
    let noop_ns = hot_path_ns(&Counter::noop(), &Histogram::noop(), cfg.hot_ops);
    println!("hot_path_ns ops={} live={live_ns:.1} noop={noop_ns:.1}", cfg.hot_ops);
    let _ = writeln!(
        rows,
        "    {{\"experiment\": \"hot_path_ns\", \"ops\": {}, \"live_ns_per_update\": \
         {live_ns:.2}, \"noop_ns_per_update\": {noop_ns:.2}}},",
        cfg.hot_ops
    );

    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"mode\": \"{}\",\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"target_overhead_pct\": 3.0,\n  \
         \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    std::fs::write(path, &json).expect("write BENCH_5.json");
    println!("wrote {path}");
    println!("telemetry overhead: {overhead_pct:.2}% of audit wall-clock (target < 3%)");
    assert!(
        overhead_pct < 3.0,
        "telemetry overhead {overhead_pct:.2}% breaches the 3% acceptance target"
    );
}
