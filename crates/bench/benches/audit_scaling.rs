//! B2: end-to-end audit latency versus query-log size, with and without the
//! static candidate filter (the Agrawal et al. pruning step).
//!
//! Expected shape: both scale roughly linearly in the log, but the filtered
//! variant wins by a growing factor because pruned queries skip semantic
//! evaluation entirely (~95% of a 5%-suspicious log is prunable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use audex_bench::{all_time, scenario};
use audex_core::EngineOptions;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit_scaling");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for queries in [100usize, 400, 1600] {
        let s = scenario(400, queries, 0.05, 11);
        let expr = all_time(s.audit.clone());

        for (label, static_filter) in [("with_static_filter", true), ("no_static_filter", false)] {
            let engine = s.engine(EngineOptions { static_filter, ..Default::default() });
            g.bench_with_input(BenchmarkId::new(label, queries), &queries, |b, _| {
                b.iter(|| {
                    let r = engine.audit_at(&expr, s.now).unwrap();
                    assert!(r.verdict.suspicious);
                    r.verdict.accessed_granules
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
