//! B3: backlog time-travel cost versus update-stream length —
//! `replay_to` (state reconstruction), `versions_in` (DATA-INTERVAL
//! enumeration), and the backlog relation `b-T`.
//!
//! Expected shape: all three are linear in the number of recorded changes;
//! reconstruction of an early instant is cheaper than a late one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use audex_sql::{Ident, Timestamp};
use audex_storage::TableHistory;
use audex_workload::datagen::PATIENTS;
use audex_workload::{apply_update_stream, generate_hospital, HospitalConfig, UpdateStreamConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("versioning");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for updates in [100usize, 1_000, 10_000] {
        let hospital = HospitalConfig { patients: 500, ..Default::default() };
        let mut db = generate_hospital(&hospital, Timestamp(0));
        let cfg = UpdateStreamConfig { updates, start: Timestamp(10_000), spacing: 10, seed: 3 };
        let applied = apply_update_stream(&mut db, &hospital, &cfg);
        let last = *applied.last().unwrap();
        let mid = applied[applied.len() / 2];
        // This bench measures the replay oracle itself, so it rebuilds the
        // backlog representation from the database's mode-agnostic change
        // log (the engine default is the MVCC store).
        let patients = Ident::new(PATIENTS);
        let table = db.table(&patients).unwrap();
        let mut history = TableHistory::new(
            patients.clone(),
            table.schema().clone(),
            db.table_created_at(&patients).unwrap(),
        );
        for rec in db.table_changes(&patients).unwrap() {
            history.record(rec).unwrap();
        }

        g.bench_with_input(BenchmarkId::new("replay_to_mid", updates), &updates, |b, _| {
            b.iter(|| history.replay_to(mid).len())
        });
        g.bench_with_input(BenchmarkId::new("replay_to_end", updates), &updates, |b, _| {
            b.iter(|| history.replay_to(last).len())
        });
        g.bench_with_input(BenchmarkId::new("versions_in", updates), &updates, |b, _| {
            b.iter(|| db.versions_in(&[Ident::new(PATIENTS)], Timestamp(0), last).len())
        });
        g.bench_with_input(BenchmarkId::new("backlog_relation", updates), &updates, |b, _| {
            b.iter(|| history.backlog_relation(last).rows.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
