//! B11: streaming-ingest cost — the PR-3 service tentpole.
//!
//! Two experiments, results written to `BENCH_3.json` at the workspace root:
//!
//! * `ingest_throughput` — sustained `log`-request throughput through a
//!   [`ServiceCore`] as the number of standing (registered) audit
//!   expressions grows. Every ingested query is scored online against each
//!   standing audit and folded into the touch index, so throughput decays
//!   roughly linearly in the audit count.
//! * `maintenance_cost` — the incremental-index claim: the amortized cost
//!   of folding one more query with [`TouchIndex::extend`] stays flat as
//!   the log grows, while answering the same arrival by rebuilding the
//!   index from scratch costs time linear in the log length. Before any
//!   timing, the extended index is checked equivalent to the from-scratch
//!   build (same length, same verdict on the standard audit).
//!
//! Run `cargo bench -p audex-bench --bench ingest` for real measurements or
//! `-- --test` for the CI smoke variant (tiny sizes, one pass).

use std::fmt::Write as _;
use std::time::Instant;

use audex_bench::{all_time, scenario};
use audex_core::{Governor, TouchIndex};
use audex_service::{Json, Request, ServiceConfig, ServiceCore};
use audex_sql::parse_audit;
use audex_storage::JoinStrategy;
use audex_workload::datagen::zip_of_zone;

struct Config {
    patients: usize,
    queries: usize,
    audit_counts: Vec<usize>,
}

fn config(quick: bool) -> Config {
    if quick {
        Config { patients: 100, queries: 80, audit_counts: vec![0, 2] }
    } else {
        Config { patients: 400, queries: 800, audit_counts: vec![0, 1, 2, 4, 8] }
    }
}

/// The k-th standing audit: disease of one zip zone, pinned to all time so
/// the online scorer admits every log entry.
fn standing_audit(k: usize) -> String {
    let expr = parse_audit(&format!(
        "AUDIT disease FROM Patients, Health \
         WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
        zip_of_zone(k)
    ))
    .expect("standing audit parses");
    all_time(expr).to_string()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    // --- Experiment 1: ingest throughput vs standing-audit count. -------
    for &audits in &cfg.audit_counts {
        let s = scenario(cfg.patients, cfg.queries, 0.08, 42);
        let entries = s.log.snapshot();
        let mut core = ServiceCore::new(s.db, ServiceConfig::default());
        for k in 0..audits {
            let resp = core
                .handle(Request::Register {
                    name: format!("zone-{k}"),
                    expr: standing_audit(k),
                    now: Some(s.now),
                })
                .response;
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "register zone-{k}: {resp}");
        }
        let t = Instant::now();
        for e in &entries {
            let resp = core
                .handle(Request::Log {
                    ts: e.executed_at,
                    user: e.context.user.to_string(),
                    role: e.context.role.to_string(),
                    purpose: e.context.purpose.to_string(),
                    sql: e.text.clone(),
                })
                .response;
            debug_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
            std::hint::black_box(&resp);
        }
        let secs = t.elapsed().as_secs_f64();
        let qps = if secs > 0.0 { entries.len() as f64 / secs } else { 0.0 };
        println!(
            "ingest_throughput audits={audits} queries={} secs={secs:.4} qps={qps:.0}",
            entries.len()
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"ingest_throughput\", \"audits\": {audits}, \
             \"queries\": {}, \"secs\": {secs:.6}, \"qps\": {qps:.1}}},",
            entries.len()
        );
    }

    // --- Experiment 2: incremental extend vs from-scratch rebuild. ------
    let s = scenario(cfg.patients, cfg.queries, 0.08, 42);
    let batch = s.log.snapshot();
    let n = batch.len();
    let checkpoints: Vec<usize> = (1..=4).map(|i| i * n / 4).collect();
    let governor = Governor::unlimited();

    // Equivalence gate before timing: the streamed index must answer the
    // standard audit exactly like a from-scratch build.
    {
        let mut streamed = TouchIndex::new();
        for e in &batch {
            streamed.extend(&s.db, e, JoinStrategy::Auto, &governor).expect("extend succeeds");
        }
        let rebuilt =
            TouchIndex::build_governed_with(&s.db, &batch, JoinStrategy::Auto, &governor, 1)
                .expect("build succeeds");
        assert_eq!(streamed.len(), rebuilt.len(), "index lengths diverge");
        let prepared = s.prepared(Default::default());
        let admitted = batch.iter().map(|e| e.id).collect();
        let a = streamed.evaluate(&prepared, &admitted).expect("evaluate streamed");
        let b = rebuilt.evaluate(&prepared, &admitted).expect("evaluate rebuilt");
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "verdicts diverge");
    }

    let mut incremental = TouchIndex::new();
    let mut cumulative = 0.0f64;
    let mut next = 0;
    let mut amortized_us = Vec::new();
    let mut rebuild_us = Vec::new();
    for (i, e) in batch.iter().enumerate() {
        let t = Instant::now();
        incremental.extend(&s.db, e, JoinStrategy::Auto, &governor).expect("extend succeeds");
        cumulative += t.elapsed().as_secs_f64();
        if next < checkpoints.len() && i + 1 == checkpoints[next] {
            let len = i + 1;
            // Amortized per-query incremental cost so far.
            let amortized = cumulative / len as f64 * 1e6;
            // What the same arrival would cost without extend: rebuild the
            // whole index from scratch at this log length.
            let t = Instant::now();
            let rebuilt = TouchIndex::build_governed_with(
                &s.db,
                &batch[..len],
                JoinStrategy::Auto,
                &governor,
                1,
            )
            .expect("build succeeds");
            let rebuild = t.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(rebuilt.len());
            println!(
                "maintenance_cost log_len={len} incremental_amortized_us={amortized:.1} \
                 rebuild_us={rebuild:.1}"
            );
            let _ = writeln!(
                rows,
                "    {{\"experiment\": \"maintenance_cost\", \"log_len\": {len}, \
                 \"incremental_amortized_us\": {amortized:.2}, \"rebuild_us\": {rebuild:.2}}},",
            );
            amortized_us.push(amortized);
            rebuild_us.push(rebuild);
            next += 1;
        }
    }

    // Growth from the first checkpoint to the last (a 4x log growth):
    // incremental should stay near 1x, rebuild near 4x.
    let growth = |v: &[f64]| match (v.first(), v.last()) {
        (Some(&a), Some(&b)) if a > 0.0 => b / a,
        _ => 0.0,
    };
    let inc_growth = growth(&amortized_us);
    let reb_growth = growth(&rebuild_us);

    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"mode\": \"{}\",\n  \
         \"incremental_amortized_growth_4x_log\": {inc_growth:.3},\n  \
         \"rebuild_growth_4x_log\": {reb_growth:.3},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
    std::fs::write(path, &json).expect("write BENCH_3.json");
    println!("wrote {path}");
    println!(
        "per-query maintenance over a 4x log growth: incremental {inc_growth:.2}x, \
         from-scratch rebuild {reb_growth:.2}x"
    );
}
