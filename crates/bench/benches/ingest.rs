//! B11/B15: streaming-ingest cost — the PR-3 service tentpole, extended
//! with the PR-7 standing-audit dispatch index.
//!
//! Experiments 1–2 write `BENCH_3.json`, experiment 3 writes
//! `BENCH_7.json`, both at the workspace root:
//!
//! * `ingest_throughput` — sustained `log`-request throughput through a
//!   [`ServiceCore`] as the number of standing (registered) audit
//!   expressions grows (small counts; the historical B11 rows).
//! * `maintenance_cost` — the incremental-index claim: the amortized cost
//!   of folding one more query with [`TouchIndex::extend`] stays flat as
//!   the log grows, while answering the same arrival by rebuilding the
//!   index from scratch costs time linear in the log length. Before any
//!   timing, the extended index is checked equivalent to the from-scratch
//!   build (same length, same verdict on the standard audit).
//! * `dispatch_scaling` (B15) — throughput at 64/256/1024 standing audits
//!   through the dispatch index, with the probe/prune/shortlist counters
//!   per row, against a `scan_all` contrast row at the smallest count.
//!   Before any timing, two differential gates assert the indexed path is
//!   byte-identical to scan-all: on the paper's Tables 1–3 workload and
//!   (full mode) on the generated hospital workload.
//!
//! Run `cargo bench -p audex-bench --bench ingest` for real measurements or
//! `-- --test` for the CI smoke variant (256 standing audits, one pass,
//! asserting a throughput floor and nonzero prune counters).

use std::fmt::Write as _;
use std::time::Instant;

use audex_bench::{all_time, scenario, scenario_with_zones, Scenario};
use audex_core::{Governor, TouchIndex};
use audex_service::{Json, Request, ServiceConfig, ServiceCore};
use audex_sql::parse_audit;
use audex_storage::JoinStrategy;
use audex_workload::datagen::zip_of_zone;
use audex_workload::paper::{paper_database, paper_query_log};

struct Config {
    patients: usize,
    queries: usize,
    audit_counts: Vec<usize>,
    dispatch_zones: usize,
    dispatch_queries: usize,
    dispatch_audit_counts: Vec<usize>,
    /// CI floor on indexed q/s at the largest dispatch count (0 = no gate).
    dispatch_qps_floor: f64,
}

fn config(quick: bool) -> Config {
    if quick {
        Config {
            patients: 100,
            queries: 80,
            audit_counts: vec![0, 2],
            dispatch_zones: 256,
            dispatch_queries: 120,
            dispatch_audit_counts: vec![256],
            dispatch_qps_floor: 300.0,
        }
    } else {
        Config {
            patients: 400,
            queries: 800,
            audit_counts: vec![0, 1, 2, 4, 8],
            dispatch_zones: 1024,
            dispatch_queries: 800,
            dispatch_audit_counts: vec![64, 256, 1024],
            dispatch_qps_floor: 0.0,
        }
    }
}

/// The k-th standing audit: disease of one zip zone, pinned to all time so
/// the online scorer admits every log entry.
fn standing_audit(k: usize) -> String {
    let expr = parse_audit(&format!(
        "AUDIT disease FROM Patients, Health \
         WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
        zip_of_zone(k)
    ))
    .expect("standing audit parses");
    all_time(expr).to_string()
}

/// A core over the scenario's database with `audits` standing audits, in
/// either dispatch mode.
fn dispatch_core(s: Scenario, audits: usize, scan_all: bool) -> ServiceCore {
    let config = ServiceConfig { scan_all_audits: scan_all, ..Default::default() };
    let mut core = ServiceCore::new(s.db, config);
    for k in 0..audits {
        let resp = core
            .handle(Request::Register {
                name: format!("zone-{k}"),
                expr: standing_audit(k),
                now: Some(s.now),
            })
            .response;
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "register zone-{k}: {resp}");
    }
    core
}

fn log_request(e: &audex_log::LoggedQuery) -> Request {
    Request::Log {
        ts: e.executed_at,
        user: e.context.user.to_string(),
        role: e.context.role.to_string(),
        purpose: e.context.purpose.to_string(),
        sql: e.text.clone(),
    }
}

/// Times a full ingest of the log through the core, returning (secs, qps).
fn timed_ingest(
    core: &mut ServiceCore,
    entries: &[std::sync::Arc<audex_log::LoggedQuery>],
) -> (f64, f64) {
    let t = Instant::now();
    for e in entries {
        let resp = core.handle(log_request(e)).response;
        debug_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        std::hint::black_box(&resp);
    }
    let secs = t.elapsed().as_secs_f64();
    let qps = if secs > 0.0 { entries.len() as f64 / secs } else { 0.0 };
    (secs, qps)
}

/// Differential gate: ingest the same entries through an indexed and a
/// scan-all core; every `log` response (scores included) and every final
/// `audit` report must be byte-identical.
fn assert_byte_identical(
    indexed: &mut ServiceCore,
    oracle: &mut ServiceCore,
    entries: &[std::sync::Arc<audex_log::LoggedQuery>],
    audit_names: &[String],
    label: &str,
) {
    for e in entries {
        let a = indexed.handle(log_request(e)).response.to_string();
        let b = oracle.handle(log_request(e)).response.to_string();
        assert_eq!(a, b, "{label}: indexed vs scan-all diverge on {:?}", e.text);
    }
    for name in audit_names {
        let a = indexed.handle(Request::Audit { name: name.clone() }).response.to_string();
        let b = oracle.handle(Request::Audit { name: name.clone() }).response.to_string();
        assert_eq!(a, b, "{label}: audit report for {name:?} diverges");
    }
    println!(
        "differential gate [{label}]: {} log responses and {} audit reports byte-identical",
        entries.len(),
        audit_names.len()
    );
}

/// The Tables 1–3 gate: the paper's running example (its three relations,
/// its Figure audits — context filters, user identities, value and
/// indispensable modes — and its example log) through both dispatch modes.
fn paper_differential_gate() {
    use audex_workload::paper::{
        FIG1_AGRAWAL, FIG2_AUDIT_EXPRESSION_1, FIG3_AUDIT_EXPRESSION_2, FIG6_SEMANTIC,
        FIG7_FULL_GRAMMAR,
    };
    let figures = [
        ("fig1", FIG1_AGRAWAL),
        ("fig2", FIG2_AUDIT_EXPRESSION_1),
        ("fig3", FIG3_AUDIT_EXPRESSION_2),
        ("fig6", FIG6_SEMANTIC),
        ("fig7", FIG7_FULL_GRAMMAR),
    ];
    let now = audex_workload::paper::paper_now();
    let mut cores: Vec<ServiceCore> = [false, true]
        .iter()
        .map(|&scan_all| {
            let config = ServiceConfig { scan_all_audits: scan_all, ..Default::default() };
            let mut core = ServiceCore::new(paper_database(), config);
            for (name, text) in &figures {
                let expr = all_time(parse_audit(text).expect("figure audit parses")).to_string();
                let resp = core
                    .handle(Request::Register { name: (*name).into(), expr, now: Some(now) })
                    .response;
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "register {name}: {resp}");
            }
            core
        })
        .collect();
    let entries = paper_query_log().snapshot();
    let names: Vec<String> = figures.iter().map(|(n, _)| (*n).to_string()).collect();
    let (mut oracle, mut indexed) = (cores.pop().expect("oracle"), cores.pop().expect("indexed"));
    assert_byte_identical(&mut indexed, &mut oracle, &entries, &names, "paper Tables 1-3");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    // --- Experiment 1: ingest throughput vs standing-audit count. -------
    for &audits in &cfg.audit_counts {
        let s = scenario(cfg.patients, cfg.queries, 0.08, 42);
        let entries = s.log.snapshot();
        let mut core = ServiceCore::new(s.db, ServiceConfig::default());
        for k in 0..audits {
            let resp = core
                .handle(Request::Register {
                    name: format!("zone-{k}"),
                    expr: standing_audit(k),
                    now: Some(s.now),
                })
                .response;
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "register zone-{k}: {resp}");
        }
        let t = Instant::now();
        for e in &entries {
            let resp = core
                .handle(Request::Log {
                    ts: e.executed_at,
                    user: e.context.user.to_string(),
                    role: e.context.role.to_string(),
                    purpose: e.context.purpose.to_string(),
                    sql: e.text.clone(),
                })
                .response;
            debug_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
            std::hint::black_box(&resp);
        }
        let secs = t.elapsed().as_secs_f64();
        let qps = if secs > 0.0 { entries.len() as f64 / secs } else { 0.0 };
        println!(
            "ingest_throughput audits={audits} queries={} secs={secs:.4} qps={qps:.0}",
            entries.len()
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"ingest_throughput\", \"audits\": {audits}, \
             \"queries\": {}, \"secs\": {secs:.6}, \"qps\": {qps:.1}}},",
            entries.len()
        );
    }

    // --- Experiment 2: incremental extend vs from-scratch rebuild. ------
    let s = scenario(cfg.patients, cfg.queries, 0.08, 42);
    let batch = s.log.snapshot();
    let n = batch.len();
    let checkpoints: Vec<usize> = (1..=4).map(|i| i * n / 4).collect();
    let governor = Governor::unlimited();

    // Equivalence gate before timing: the streamed index must answer the
    // standard audit exactly like a from-scratch build.
    {
        let mut streamed = TouchIndex::new();
        for e in &batch {
            streamed.extend(&s.db, e, JoinStrategy::Auto, &governor).expect("extend succeeds");
        }
        let rebuilt =
            TouchIndex::build_governed_with(&s.db, &batch, JoinStrategy::Auto, &governor, 1)
                .expect("build succeeds");
        assert_eq!(streamed.len(), rebuilt.len(), "index lengths diverge");
        let prepared = s.prepared(Default::default());
        let admitted = batch.iter().map(|e| e.id).collect();
        let a = streamed.evaluate(&prepared, &admitted).expect("evaluate streamed");
        let b = rebuilt.evaluate(&prepared, &admitted).expect("evaluate rebuilt");
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "verdicts diverge");
    }

    let mut incremental = TouchIndex::new();
    let mut cumulative = 0.0f64;
    let mut next = 0;
    let mut amortized_us = Vec::new();
    let mut rebuild_us = Vec::new();
    for (i, e) in batch.iter().enumerate() {
        let t = Instant::now();
        incremental.extend(&s.db, e, JoinStrategy::Auto, &governor).expect("extend succeeds");
        cumulative += t.elapsed().as_secs_f64();
        if next < checkpoints.len() && i + 1 == checkpoints[next] {
            let len = i + 1;
            // Amortized per-query incremental cost so far.
            let amortized = cumulative / len as f64 * 1e6;
            // What the same arrival would cost without extend: rebuild the
            // whole index from scratch at this log length.
            let t = Instant::now();
            let rebuilt = TouchIndex::build_governed_with(
                &s.db,
                &batch[..len],
                JoinStrategy::Auto,
                &governor,
                1,
            )
            .expect("build succeeds");
            let rebuild = t.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(rebuilt.len());
            println!(
                "maintenance_cost log_len={len} incremental_amortized_us={amortized:.1} \
                 rebuild_us={rebuild:.1}"
            );
            let _ = writeln!(
                rows,
                "    {{\"experiment\": \"maintenance_cost\", \"log_len\": {len}, \
                 \"incremental_amortized_us\": {amortized:.2}, \"rebuild_us\": {rebuild:.2}}},",
            );
            amortized_us.push(amortized);
            rebuild_us.push(rebuild);
            next += 1;
        }
    }

    // Growth from the first checkpoint to the last (a 4x log growth):
    // incremental should stay near 1x, rebuild near 4x.
    let growth = |v: &[f64]| match (v.first(), v.last()) {
        (Some(&a), Some(&b)) if a > 0.0 => b / a,
        _ => 0.0,
    };
    let inc_growth = growth(&amortized_us);
    let reb_growth = growth(&rebuild_us);

    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"mode\": \"{}\",\n  \
         \"incremental_amortized_growth_4x_log\": {inc_growth:.3},\n  \
         \"rebuild_growth_4x_log\": {reb_growth:.3},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
    std::fs::write(path, &json).expect("write BENCH_3.json");
    println!("wrote {path}");
    println!(
        "per-query maintenance over a 4x log growth: incremental {inc_growth:.2}x, \
         from-scratch rebuild {reb_growth:.2}x"
    );

    // --- Experiment 3 (B15): dispatch-index scaling. --------------------
    // Correctness gates first: both workloads byte-identical across modes.
    paper_differential_gate();
    {
        let audits = cfg.dispatch_audit_counts[0];
        let build = || {
            scenario_with_zones(
                cfg.dispatch_zones,
                cfg.dispatch_queries.min(200),
                0.08,
                42,
                cfg.dispatch_zones,
            )
        };
        let entries = build().log.snapshot();
        let names: Vec<String> = (0..audits).map(|k| format!("zone-{k}")).collect();
        let mut indexed = dispatch_core(build(), audits, false);
        let mut oracle = dispatch_core(build(), audits, true);
        assert_byte_identical(
            &mut indexed,
            &mut oracle,
            &entries,
            &names,
            &format!("hospital workload, {audits} audits"),
        );
    }

    let mut rows7 = String::new();
    let mut largest_qps = 0.0f64;
    for &audits in &cfg.dispatch_audit_counts {
        let s = scenario_with_zones(
            cfg.dispatch_zones,
            cfg.dispatch_queries,
            0.08,
            42,
            cfg.dispatch_zones,
        );
        let entries = s.log.snapshot();
        let mut core = dispatch_core(s, audits, false);
        let (secs, qps) = timed_ingest(&mut core, &entries);
        largest_qps = qps;
        let stats = core.handle(Request::Stats).response;
        let stat = |k: &str| stats.get(k).and_then(Json::as_int).unwrap_or(0);
        let (probes, pruned, shortlisted, rebuilds) = (
            stat("dispatch_probes"),
            stat("dispatch_pruned"),
            stat("dispatch_shortlisted"),
            stat("dispatch_rebuilds"),
        );
        let (probe_builds, probe_hits) =
            (stat("dispatch_fact_probe_builds"), stat("dispatch_fact_probe_hits"));
        println!(
            "dispatch_scaling audits={audits} queries={} secs={secs:.4} qps={qps:.0} \
             probes={probes} pruned={pruned} shortlisted={shortlisted} rebuilds={rebuilds} \
             fact_probe_builds={probe_builds} fact_probe_hits={probe_hits}",
            entries.len()
        );
        let _ = writeln!(
            rows7,
            "    {{\"experiment\": \"dispatch_scaling\", \"audits\": {audits}, \
             \"queries\": {}, \"secs\": {secs:.6}, \"qps\": {qps:.1}, \
             \"probes\": {probes}, \"pruned\": {pruned}, \"shortlisted\": {shortlisted}, \
             \"rebuilds\": {rebuilds}, \"fact_probe_builds\": {probe_builds}, \
             \"fact_probe_hits\": {probe_hits}}},",
            entries.len()
        );
        assert!(probes as usize >= entries.len(), "every ingested query must be probed");
        assert!(pruned > 0, "at {audits} standing audits the index must prune something");
        assert!(
            probe_hits > 0,
            "at {audits} standing audits the per-audit fact-probe cache must get hits"
        );
    }
    if cfg.dispatch_qps_floor > 0.0 {
        assert!(
            largest_qps >= cfg.dispatch_qps_floor,
            "dispatch ingest smoke below the throughput floor: {largest_qps:.0} q/s < {} q/s",
            cfg.dispatch_qps_floor
        );
    }

    // Scan-all contrast at the smallest count — the linear baseline the
    // index is measured against (kept small: the oracle is the slow path).
    {
        let audits = cfg.dispatch_audit_counts[0];
        let s = scenario_with_zones(
            cfg.dispatch_zones,
            cfg.dispatch_queries,
            0.08,
            42,
            cfg.dispatch_zones,
        );
        let entries = s.log.snapshot();
        let mut core = dispatch_core(s, audits, true);
        let (secs, qps) = timed_ingest(&mut core, &entries);
        println!(
            "dispatch_scan_all audits={audits} queries={} secs={secs:.4} qps={qps:.0}",
            entries.len()
        );
        let _ = writeln!(
            rows7,
            "    {{\"experiment\": \"dispatch_scan_all\", \"audits\": {audits}, \
             \"queries\": {}, \"secs\": {secs:.6}, \"qps\": {qps:.1}}},",
            entries.len()
        );
    }

    let rows7 = rows7.trim_end().trim_end_matches(',');
    let json7 = format!(
        "{{\n  \"bench\": \"dispatch\",\n  \"mode\": \"{}\",\n  \"rows\": [\n{rows7}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path7 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path7, &json7).expect("write BENCH_7.json");
    println!("wrote {path7}");
}
