//! B6 (ablation): hash join versus nested-loop cross product inside the
//! semantic evaluation — the executor design choice DESIGN.md calls out.
//!
//! Expected shape: hash join wins on the equi-join audit workload by a
//! factor that grows with table size (nested loop is O(n²) on the join).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use audex_bench::{all_time, scenario};
use audex_core::EngineOptions;
use audex_storage::JoinStrategy;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_ablation");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for patients in [100usize, 400, 1600] {
        let s = scenario(patients, 100, 0.1, 31);
        let expr = all_time(s.audit.clone());
        for (label, strategy) in
            [("hash", JoinStrategy::Auto), ("nested_loop", JoinStrategy::NestedLoop)]
        {
            let engine = s.engine(EngineOptions { strategy, ..Default::default() });
            g.bench_with_input(BenchmarkId::new(label, patients), &patients, |b, _| {
                b.iter(|| {
                    let r = engine.audit_at(&expr, s.now).unwrap();
                    r.verdict.accessed_granules
                })
            });
        }

        // Verdicts must agree regardless of strategy.
        let hash = s
            .engine(EngineOptions { strategy: JoinStrategy::Auto, ..Default::default() })
            .audit_at(&expr, s.now)
            .unwrap();
        let nested = s
            .engine(EngineOptions { strategy: JoinStrategy::NestedLoop, ..Default::default() })
            .audit_at(&expr, s.now)
            .unwrap();
        assert_eq!(hash.verdict.accessed_granules, nested.verdict.accessed_granules);
        assert_eq!(hash.verdict.contributing, nested.verdict.contributing);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
