//! B8: many audits over one log — direct evaluation (re-running each logged
//! query per audit) versus the touch index (§4 "efficient algorithms",
//! running each query once).
//!
//! Expected shape: direct cost ≈ audits × per-audit cost; indexed cost =
//! one build + cheap per-audit set matching, so the index wins from a small
//! number of audits onward and the gap grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::time::Duration;

use audex_bench::{all_time, scenario};
use audex_core::{EngineOptions, TouchIndex};
use audex_log::QueryId;
use audex_sql::parse_audit;
use audex_storage::JoinStrategy;
use audex_workload::datagen::zip_of_zone;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi_audit");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let s = scenario(300, 300, 0.1, 41);
    let engine = s.engine(EngineOptions { static_filter: false, ..Default::default() });
    let batch = s.log.snapshot();
    let admitted: BTreeSet<QueryId> = batch.iter().map(|e| e.id).collect();

    for audits in [1usize, 4, 16] {
        let prepared: Vec<_> = (0..audits)
            .map(|i| {
                let text = format!(
                    "AUDIT disease FROM Patients, Health \
                     WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
                    zip_of_zone(i % 20)
                );
                engine.prepare(&all_time(parse_audit(&text).unwrap()), s.now).unwrap()
            })
            .collect();

        g.bench_with_input(BenchmarkId::new("direct", audits), &audits, |b, _| {
            b.iter(|| {
                let mut hits = 0u128;
                for p in &prepared {
                    hits += engine.run(p).unwrap().verdict.accessed_granules;
                }
                hits
            })
        });

        g.bench_with_input(BenchmarkId::new("indexed", audits), &audits, |b, _| {
            b.iter(|| {
                let index = TouchIndex::build(&s.db, &batch, JoinStrategy::Auto);
                let mut hits = 0u128;
                for p in &prepared {
                    hits += index.evaluate(p, &admitted).unwrap().accessed_granules;
                }
                hits
            })
        });

        // Sanity: both paths agree.
        let index = TouchIndex::build(&s.db, &batch, JoinStrategy::Auto);
        for p in &prepared {
            let direct = engine.run(p).unwrap();
            let indexed = index.evaluate(p, &admitted).unwrap();
            assert_eq!(direct.verdict.accessed_granules, indexed.accessed_granules);
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
