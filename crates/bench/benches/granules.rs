//! B1: granule counting and enumeration cost versus |U| and THRESHOLD.
//!
//! Expected shape: counting is O(schemes) regardless of C(n,k) (closed
//! form), enumeration grows combinatorially with k, and THRESHOLD ALL is a
//! single granule per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use audex_bench::{all_time, scenario};
use audex_core::{EngineOptions, GranuleModel};
use audex_sql::ast::Threshold;
use audex_sql::parse_audit;
use audex_workload::querygen::standard_audit_text;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("granules");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    // Vary |U| through the number of patients (zone 0 holds ~1/20th).
    for patients in [200usize, 800, 3200] {
        let s = scenario(patients, 1, 0.0, 5);
        let engine = s.engine(EngineOptions::default());
        let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
        let prepared = engine.prepare(&expr, s.now).unwrap();
        let n = prepared.view.len();

        for threshold in [Threshold::Count(1), Threshold::Count(2), Threshold::All] {
            let model =
                GranuleModel { spec: prepared.spec.clone(), threshold, indispensable: true };
            let label = match threshold {
                Threshold::Count(k) => format!("n{n}/k{k}"),
                Threshold::All => format!("n{n}/kALL"),
            };
            g.bench_with_input(BenchmarkId::new("count", &label), &model, |b, m| {
                b.iter(|| m.count(std::hint::black_box(n)))
            });
            // Enumeration is guarded: only enumerate when feasible.
            if model.count(n) <= 200_000 {
                g.bench_with_input(BenchmarkId::new("enumerate", &label), &model, |b, m| {
                    b.iter(|| m.enumerate(&prepared.view).count())
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
