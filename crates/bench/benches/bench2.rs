//! B10: parallel-pipeline scaling — the PR-2 performance tentpole.
//!
//! Two experiments, results written to `BENCH_2.json` at the workspace root:
//!
//! * `threads_scaling` — wall-clock of the full audit at 1/2/4/8 worker
//!   threads across log sizes, with the snapshot cache and hash-set fact
//!   matching active. Reports are asserted byte-identical across thread
//!   counts before any timing is recorded.
//! * `join_ablation` — hash join versus nested-loop at fixed thread count,
//!   the executor-level half of the speedup story.
//!
//! Run `cargo bench -p audex-bench --bench bench2` for real measurements or
//! `-- --test` for the CI smoke variant (tiny sizes, one iteration).

use std::fmt::Write as _;
use std::time::Instant;

use audex_bench::{all_time, scenario, Scenario};
use audex_core::{AuditMode, EngineOptions};
use audex_sql::ast::AuditExpr;
use audex_storage::JoinStrategy;

struct Config {
    /// (patients, queries) per scaling row.
    sizes: Vec<(usize, usize)>,
    threads: Vec<usize>,
    iters: usize,
}

fn config(quick: bool) -> Config {
    if quick {
        Config { sizes: vec![(100, 60)], threads: vec![1, 2], iters: 1 }
    } else {
        Config {
            sizes: vec![(400, 400), (800, 1200), (1200, 2400)],
            threads: vec![1, 2, 4, 8],
            iters: 3,
        }
    }
}

fn engine_options(threads: usize, strategy: JoinStrategy) -> EngineOptions {
    EngineOptions { mode: AuditMode::Batch, strategy, parallelism: threads, ..Default::default() }
}

/// Median wall-clock seconds over `iters` runs of a full audit.
fn time_audit(s: &Scenario, expr: &AuditExpr, options: EngineOptions, iters: usize) -> f64 {
    let engine = s.engine(options);
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let report = engine.audit_at(expr, s.now).expect("audit succeeds");
            let elapsed = t.elapsed().as_secs_f64();
            std::hint::black_box(report.verdict.accessed_granules);
            elapsed
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Renders the text report, for byte-identity checks across configurations.
fn report_text(s: &Scenario, expr: &AuditExpr, options: EngineOptions) -> String {
    let engine = s.engine(options);
    let report = engine.audit_at(expr, s.now).expect("audit succeeds");
    report.render_text(&s.log)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut rows = String::new();
    let mut speedup_at_4 = None;

    for &(patients, queries) in &cfg.sizes {
        let s = scenario(patients, queries, 0.08, 42);
        let expr = all_time(s.audit.clone());

        // Determinism gate: every thread count must render the same report.
        let baseline = report_text(&s, &expr, engine_options(1, JoinStrategy::Auto));
        for &t in &cfg.threads {
            let r = report_text(&s, &expr, engine_options(t, JoinStrategy::Auto));
            assert_eq!(baseline, r, "report differs at {t} threads ({patients}p/{queries}q)");
        }

        let mut base_secs = 0.0;
        for &t in &cfg.threads {
            let secs = time_audit(&s, &expr, engine_options(t, JoinStrategy::Auto), cfg.iters);
            if t == 1 {
                base_secs = secs;
            }
            let speedup = if secs > 0.0 { base_secs / secs } else { 0.0 };
            if t == 4 {
                // Track the largest workload's 4-thread speedup for the summary.
                speedup_at_4 = Some(speedup);
            }
            println!(
                "threads_scaling patients={patients} queries={queries} threads={t} \
                 secs={secs:.4} speedup={speedup:.2}x"
            );
            let _ = writeln!(
                rows,
                "    {{\"experiment\": \"threads_scaling\", \"patients\": {patients}, \
                 \"queries\": {queries}, \"threads\": {t}, \"secs\": {secs:.6}, \
                 \"speedup_vs_1\": {speedup:.3}}},"
            );
        }

        // Join ablation at this size, sequential so only the strategy varies.
        for (label, strategy) in
            [("hash", JoinStrategy::Auto), ("nested_loop", JoinStrategy::NestedLoop)]
        {
            let secs = time_audit(&s, &expr, engine_options(1, strategy), cfg.iters);
            println!(
                "join_ablation patients={patients} queries={queries} strategy={label} \
                 secs={secs:.4}"
            );
            let _ = writeln!(
                rows,
                "    {{\"experiment\": \"join_ablation\", \"patients\": {patients}, \
                 \"queries\": {queries}, \"strategy\": \"{label}\", \"secs\": {secs:.6}}},"
            );
        }
        let nested = report_text(&s, &expr, engine_options(1, JoinStrategy::NestedLoop));
        assert_eq!(baseline, nested, "report differs under nested-loop join");

        // Snapshot-cache effectiveness across everything run at this size.
        let stats = s.db.snapshot_stats();
        println!(
            "snapshot_cache patients={patients} queries={queries} hits={} misses={}",
            stats.hits, stats.misses
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"snapshot_cache\", \"patients\": {patients}, \
             \"queries\": {queries}, \"hits\": {}, \"misses\": {}}},",
            stats.hits, stats.misses
        );
    }

    let rows = rows.trim_end().trim_end_matches(',');
    let summary = speedup_at_4.map(|x| format!("{x:.3}")).unwrap_or_else(|| "null".to_string());
    // Parallel speedup is bounded by the physical cores of the host, so the
    // artifact records both: `speedup_vs_1` rows are only meaningful up to
    // `available_cores` workers (on a 1-core host they measure pure
    // fan-out overhead instead).
    let json = format!(
        "{{\n  \"bench\": \"bench2\",\n  \"mode\": \"{}\",\n  \
         \"available_cores\": {cores},\n  \
         \"largest_workload_speedup_at_4_threads\": {summary},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json");
    std::fs::write(path, &json).expect("write BENCH_2.json");
    println!("wrote {path}");
    if let Some(x) = speedup_at_4 {
        println!("largest-workload speedup at 4 threads: {x:.2}x ({cores} cores available)");
        if cores < 4 {
            println!(
                "note: host exposes only {cores} core(s); the 4-thread row measures \
                 fan-out overhead, not attainable speedup"
            );
        }
    }
}
