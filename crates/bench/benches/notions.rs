//! B4: the three classic suspicion notions (expressed in the granule model)
//! on the same planted workload — detection counts and evaluation cost.
//!
//! Expected shape: perfect privacy flags the most queries and weak syntactic
//! nearly as many; the semantic (indispensable-tuple) notion is the most
//! selective. Costs are of the same order because all three share the
//! target view and lineage machinery; perfect privacy pays extra for its
//! wider target view ([*] pulls every column into U).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use audex_bench::{all_time, scenario};
use audex_core::notions::{perfect_privacy, semantic_indispensable, weak_syntactic};
use audex_core::EngineOptions;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("notions");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let s = scenario(400, 400, 0.05, 17);
    let base = all_time(s.audit.clone());
    let engine = s.engine(EngineOptions::default());

    let notions = [
        ("perfect_privacy", perfect_privacy(base.clone())),
        ("weak_syntactic", weak_syntactic(base.clone()).unwrap()),
        ("semantic_indispensable", semantic_indispensable(base.clone())),
    ];

    // Print detection counts once (the "who wins" row of EXPERIMENTS.md B4).
    for (name, expr) in &notions {
        let r = engine.audit_at(expr, s.now).unwrap();
        println!(
            "B4 {name}: suspicious={} contributors={} granules={}/{}",
            r.verdict.suspicious,
            r.verdict.contributing.len(),
            r.verdict.accessed_granules,
            r.verdict.total_granules
        );
    }

    for (name, expr) in &notions {
        g.bench_function(*name, |b| {
            b.iter(|| {
                let r = engine.audit_at(expr, s.now).unwrap();
                r.verdict.contributing.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
