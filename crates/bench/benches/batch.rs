//! B5: batch suspicion evaluation cost versus batch size (Motwani et al.
//! Definition 4 via the granule model), on a prepared audit — isolates the
//! per-query semantic evaluation from target-view construction.
//!
//! Expected shape: linear in the batch once the audit is prepared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use audex_bench::{all_time, scenario};
use audex_core::{BatchEvaluator, EngineOptions};
use audex_storage::JoinStrategy;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let s = scenario(400, 1600, 0.05, 23);
    let mut expr = s.audit.clone();
    expr = all_time(expr);
    let engine = s.engine(EngineOptions::default());
    let prepared = engine.prepare(&expr, s.now).unwrap();
    let evaluator = BatchEvaluator::new(
        &s.db,
        &prepared.scope,
        &prepared.model,
        &prepared.view,
        JoinStrategy::Auto,
    );
    let full = s.log.snapshot();

    for size in [100usize, 400, 1600] {
        let batch = &full[..size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let v = evaluator.evaluate(batch).unwrap();
                v.accessed_granules
            })
        });
    }

    // Also: the prepared-audit reuse advantage (prepare once vs every time).
    g.bench_function("prepare_only", |b| {
        b.iter(|| engine.prepare(&expr, s.now).unwrap().view.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
