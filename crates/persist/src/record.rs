//! Logical WAL records — everything the service must remember to rebuild
//! its state after a crash.
//!
//! The variants mirror the state-bearing events of the streaming service:
//! table creation, row-level change, query-log append (with its policy
//! annotations, or its redacted no-raw-SQL form), audit registration and
//! unregistration, review-queue acknowledgements/dismissals, and
//! sensitivity-weight changes. Replaying them in sequence order through the
//! same code paths that produced them reconstructs the exact in-memory
//! state (asserted by the differential crash-recovery tests).

use audex_core::BaseColumn;
use audex_log::QueryId;
use audex_sql::{Ident, Timestamp};
use audex_storage::{ChangeRecord, Schema};
use audex_triage::RedactedScore;

use crate::codec::{self, Dec, DecodeError, Enc};

const TAG_CREATE_TABLE: u8 = 1;
const TAG_CHANGE: u8 = 2;
const TAG_LOG_APPEND: u8 = 3;
const TAG_REGISTER: u8 = 4;
const TAG_UNREGISTER: u8 = 5;
const TAG_REVIEW_ACK: u8 = 6;
const TAG_REVIEW_DISMISS: u8 = 7;
const TAG_LOG_APPEND_REDACTED: u8 = 8;
const TAG_SET_WEIGHT: u8 = 9;
const TAG_REVIEW_ACK_BULK: u8 = 10;

/// One durable event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE` committed at `ts`.
    CreateTable {
        /// The new table's name.
        name: Ident,
        /// Its schema.
        schema: Schema,
        /// Commit timestamp.
        ts: Timestamp,
    },
    /// A row-level change committed to `table`.
    Change {
        /// The mutated table.
        table: Ident,
        /// The backlog record (timestamp, op, tid, after-image).
        rec: ChangeRecord,
    },
    /// A query was appended to the access log with its annotations.
    LogAppend {
        /// Execution timestamp.
        ts: Timestamp,
        /// Submitting user.
        user: Ident,
        /// Role acted under.
        role: Ident,
        /// Declared purpose.
        purpose: Ident,
        /// The query text as logged.
        sql: String,
    },
    /// An audit expression was registered.
    Register {
        /// The audit's service-level name.
        name: String,
        /// The audit expression text.
        expr: String,
        /// The `now()` instant it was prepared at — replaying the
        /// registration at the same instant against the same database state
        /// reproduces the identical prepared audit.
        now: Timestamp,
    },
    /// A registered audit was removed.
    Unregister {
        /// The audit's service-level name.
        name: String,
    },
    /// A flagged query was acknowledged in the review queue.
    ReviewAck {
        /// The reviewed query.
        query: QueryId,
    },
    /// A flagged query was dismissed from the review queue.
    ReviewDismiss {
        /// The reviewed query.
        query: QueryId,
    },
    /// A query was appended under `--redact-log`: structural metadata and a
    /// hash of the text, never the raw SQL itself.
    LogAppendRedacted {
        /// Execution timestamp.
        ts: Timestamp,
        /// Submitting user.
        user: Ident,
        /// Role acted under.
        role: Ident,
        /// Declared purpose.
        purpose: Ident,
        /// FNV-1a 64-bit hash of the raw SQL text (correlation without
        /// disclosure).
        sql_hash: u64,
        /// Base tables the query referenced.
        tables: Vec<Ident>,
        /// Base columns the query accessed.
        accessed: Vec<BaseColumn>,
        /// Its redacted per-audit scores at append time.
        scores: Vec<RedactedScore>,
    },
    /// Every open review-queue item matching one mined template was
    /// acknowledged in a single decision. The resolved query ids are
    /// journaled explicitly (not the template index): template mining is
    /// derived state, and replaying ids keeps recovery independent of it.
    ReviewAckBulk {
        /// The acknowledged queries, in ascending id order.
        queries: Vec<QueryId>,
    },
    /// A triage sensitivity weight was set.
    SetWeight {
        /// The weighted table.
        table: Ident,
        /// The weighted column, or `None` for a whole-table weight.
        column: Option<Ident>,
        /// The weight value.
        weight: f64,
    },
}

impl WalRecord {
    /// Encodes the record payload (tag + body, no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalRecord::CreateTable { name, schema, ts } => {
                e.u8(TAG_CREATE_TABLE);
                codec::put_ident(&mut e, name);
                codec::put_schema(&mut e, schema);
                e.i64(ts.0);
            }
            WalRecord::Change { table, rec } => {
                e.u8(TAG_CHANGE);
                codec::put_ident(&mut e, table);
                codec::put_change(&mut e, rec);
            }
            WalRecord::LogAppend { ts, user, role, purpose, sql } => {
                e.u8(TAG_LOG_APPEND);
                e.i64(ts.0);
                codec::put_ident(&mut e, user);
                codec::put_ident(&mut e, role);
                codec::put_ident(&mut e, purpose);
                e.str(sql);
            }
            WalRecord::Register { name, expr, now } => {
                e.u8(TAG_REGISTER);
                e.str(name);
                e.str(expr);
                e.i64(now.0);
            }
            WalRecord::Unregister { name } => {
                e.u8(TAG_UNREGISTER);
                e.str(name);
            }
            WalRecord::ReviewAck { query } => {
                e.u8(TAG_REVIEW_ACK);
                e.u64(query.0);
            }
            WalRecord::ReviewDismiss { query } => {
                e.u8(TAG_REVIEW_DISMISS);
                e.u64(query.0);
            }
            WalRecord::ReviewAckBulk { queries } => {
                e.u8(TAG_REVIEW_ACK_BULK);
                e.u32(queries.len() as u32);
                for q in queries {
                    e.u64(q.0);
                }
            }
            WalRecord::LogAppendRedacted {
                ts,
                user,
                role,
                purpose,
                sql_hash,
                tables,
                accessed,
                scores,
            } => {
                e.u8(TAG_LOG_APPEND_REDACTED);
                e.i64(ts.0);
                codec::put_ident(&mut e, user);
                codec::put_ident(&mut e, role);
                codec::put_ident(&mut e, purpose);
                e.u64(*sql_hash);
                e.u32(tables.len() as u32);
                for t in tables {
                    codec::put_ident(&mut e, t);
                }
                e.u32(accessed.len() as u32);
                for bc in accessed {
                    codec::put_ident(&mut e, &bc.0);
                    codec::put_ident(&mut e, &bc.1);
                }
                e.u32(scores.len() as u32);
                for s in scores {
                    codec::put_redacted_score(&mut e, s);
                }
            }
            WalRecord::SetWeight { table, column, weight } => {
                e.u8(TAG_SET_WEIGHT);
                codec::put_ident(&mut e, table);
                match column {
                    Some(c) => {
                        e.bool(true);
                        codec::put_ident(&mut e, c);
                    }
                    None => e.bool(false),
                }
                e.f64(*weight);
            }
        }
        e.into_bytes()
    }

    /// Decodes a record payload; the whole buffer must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut d = Dec::new(bytes);
        let rec = match d.u8()? {
            TAG_CREATE_TABLE => {
                let name = codec::get_ident(&mut d)?;
                let schema = codec::get_schema(&mut d)?;
                let ts = Timestamp(d.i64()?);
                WalRecord::CreateTable { name, schema, ts }
            }
            TAG_CHANGE => {
                let table = codec::get_ident(&mut d)?;
                let rec = codec::get_change(&mut d)?;
                WalRecord::Change { table, rec }
            }
            TAG_LOG_APPEND => {
                let ts = Timestamp(d.i64()?);
                let user = codec::get_ident(&mut d)?;
                let role = codec::get_ident(&mut d)?;
                let purpose = codec::get_ident(&mut d)?;
                let sql = d.str()?;
                WalRecord::LogAppend { ts, user, role, purpose, sql }
            }
            TAG_REGISTER => {
                let name = d.str()?;
                let expr = d.str()?;
                let now = Timestamp(d.i64()?);
                WalRecord::Register { name, expr, now }
            }
            TAG_UNREGISTER => WalRecord::Unregister { name: d.str()? },
            TAG_REVIEW_ACK => WalRecord::ReviewAck { query: QueryId(d.u64()?) },
            TAG_REVIEW_DISMISS => WalRecord::ReviewDismiss { query: QueryId(d.u64()?) },
            TAG_REVIEW_ACK_BULK => {
                let mut queries = Vec::new();
                for _ in 0..d.seq_len()? {
                    queries.push(QueryId(d.u64()?));
                }
                WalRecord::ReviewAckBulk { queries }
            }
            TAG_LOG_APPEND_REDACTED => {
                let ts = Timestamp(d.i64()?);
                let user = codec::get_ident(&mut d)?;
                let role = codec::get_ident(&mut d)?;
                let purpose = codec::get_ident(&mut d)?;
                let sql_hash = d.u64()?;
                let mut tables = Vec::new();
                for _ in 0..d.seq_len()? {
                    tables.push(codec::get_ident(&mut d)?);
                }
                let mut accessed = Vec::new();
                for _ in 0..d.seq_len()? {
                    let t = codec::get_ident(&mut d)?;
                    let c = codec::get_ident(&mut d)?;
                    accessed.push((t, c));
                }
                let mut scores = Vec::new();
                for _ in 0..d.seq_len()? {
                    scores.push(codec::get_redacted_score(&mut d)?);
                }
                WalRecord::LogAppendRedacted {
                    ts,
                    user,
                    role,
                    purpose,
                    sql_hash,
                    tables,
                    accessed,
                    scores,
                }
            }
            TAG_SET_WEIGHT => {
                let table = codec::get_ident(&mut d)?;
                let column = if d.bool()? { Some(codec::get_ident(&mut d)?) } else { None };
                let weight = d.f64()?;
                WalRecord::SetWeight { table, column, weight }
            }
            _ => return Err(DecodeError { expected: "record tag", offset: 0 }),
        };
        if !d.is_exhausted() {
            return Err(DecodeError { expected: "end of record", offset: d.offset() });
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::ast::TypeName;
    use audex_storage::{ChangeOp, Tid, Value};

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: Ident { value: "Mixed Case".into(), quoted: true },
                schema: Schema::new(vec![
                    (Ident::new("a"), TypeName::Int),
                    (Ident::new("b"), TypeName::Float),
                ])
                .unwrap(),
                ts: Timestamp(0),
            },
            WalRecord::Change {
                table: Ident::new("t"),
                rec: ChangeRecord {
                    ts: Timestamp(5),
                    op: ChangeOp::Insert,
                    tid: Tid(11),
                    after: Some(vec![Value::Int(1), Value::Float(2.5)]),
                },
            },
            WalRecord::Change {
                table: Ident::new("t"),
                rec: ChangeRecord {
                    ts: Timestamp(6),
                    op: ChangeOp::Delete,
                    tid: Tid(11),
                    after: None,
                },
            },
            WalRecord::LogAppend {
                ts: Timestamp(50),
                user: Ident::new("u1"),
                role: Ident::new("nurse"),
                purpose: Ident::new("treatment"),
                sql: "SELECT disease FROM Patients WHERE zipcode = '120016'".into(),
            },
            WalRecord::Register {
                name: "a1".into(),
                expr: "AUDIT disease FROM Patients".into(),
                now: Timestamp(1000),
            },
            WalRecord::Unregister { name: "a1".into() },
            WalRecord::ReviewAck { query: QueryId(3) },
            WalRecord::ReviewDismiss { query: QueryId(4) },
            WalRecord::ReviewAckBulk { queries: vec![QueryId(2), QueryId(5), QueryId(9)] },
            WalRecord::ReviewAckBulk { queries: vec![] },
            WalRecord::LogAppendRedacted {
                ts: Timestamp(60),
                user: Ident::new("u1"),
                role: Ident::new("nurse"),
                purpose: Ident::new("treatment"),
                sql_hash: 0xDEAD_BEEF_CAFE_F00D,
                tables: vec![Ident::new("Patients")],
                accessed: vec![(Ident::new("Patients"), Ident::new("disease"))],
                scores: vec![audex_triage::RedactedScore {
                    audit: audex_core::AuditId(1),
                    fact_coverage: 0.5,
                    column_coverage: 1.0,
                    closeness: 0.5,
                    touched: 3,
                    exposed: 0,
                    covered: vec![(Ident::new("Patients"), Ident::new("disease"))],
                }],
            },
            WalRecord::LogAppendRedacted {
                ts: Timestamp(61),
                user: Ident::new("u2"),
                role: Ident::new("admin"),
                purpose: Ident::new("ops"),
                sql_hash: 0,
                tables: vec![],
                accessed: vec![],
                scores: vec![],
            },
            WalRecord::SetWeight {
                table: Ident::new("Patients"),
                column: Some(Ident::new("disease")),
                weight: 5.0,
            },
            WalRecord::SetWeight { table: Ident::new("Patients"), column: None, weight: 2.5 },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        for rec in samples() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(WalRecord::decode(&bytes[..cut]).is_err(), "{rec:?} cut at {cut}");
            }
            let mut extended = bytes.clone();
            extended.push(0);
            assert!(WalRecord::decode(&extended).is_err(), "trailing byte must be rejected");
        }
        assert!(WalRecord::decode(&[99]).is_err(), "unknown tag");
    }
}
