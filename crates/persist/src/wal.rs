//! The segmented write-ahead log.
//!
//! On disk, a WAL directory holds segments named `wal-<first_seq>.log`
//! (20-digit zero-padded global sequence number of the segment's first
//! record, so lexicographic order is sequence order). Each segment starts
//! with an 8-byte magic header and then packs frames:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! `crc32` covers the payload only; the payload is a [`WalRecord`] encoding.
//! Appends never rewrite earlier bytes, so the only corruption a crash can
//! produce is at the tail of the **final** segment — the torn-tail rule:
//! scan to the last frame whose length fits and whose CRC matches, truncate
//! there, continue. Invalid frames anywhere else (an earlier segment, or a
//! CRC-valid frame that does not decode) are hard errors: append-only files
//! do not tear in the middle.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use audex_storage::{IoAppendFault, IoFaultState};

use crate::codec::crc32;
use crate::error::{PersistError, Result};
use crate::record::WalRecord;

/// Segment header: magic + format version.
const SEGMENT_MAGIC: &[u8; 8] = b"AXWAL\x01\0\0";

/// Frame header size: u32 length + u32 CRC.
const FRAME_HEADER: u64 = 8;

/// How many appends a `batch` fsync policy groups per fsync.
pub const BATCH_FSYNC_INTERVAL: u64 = 64;

/// When the journal flushes appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — an acknowledged request is durable.
    Always,
    /// fsync every [`BATCH_FSYNC_INTERVAL`] records, plus at rotation,
    /// checkpoint, and shutdown — bounded loss window, much higher
    /// throughput.
    Batch,
    /// Never fsync (the OS flushes when it likes) — benchmark baseline and
    /// "I trust the kernel" mode.
    Never,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy '{other}' (use always|batch|never)")),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        })
    }
}

/// Tunables for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Flush discipline.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_max_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { fsync: FsyncPolicy::Batch, segment_max_bytes: 4 * 1024 * 1024 }
    }
}

/// One scanned segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment file path.
    pub path: PathBuf,
    /// Global sequence number of its first record.
    pub first_seq: u64,
    /// Number of valid records it holds.
    pub records: u64,
    /// Valid bytes (header + frames).
    pub bytes: u64,
}

/// A torn tail found (and possibly repaired) in the final segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The final segment's path.
    pub path: PathBuf,
    /// Bytes up to and including the last valid frame.
    pub valid_bytes: u64,
    /// Garbage bytes past it that were (or would be) dropped.
    pub dropped_bytes: u64,
    /// True once the file has actually been truncated.
    pub repaired: bool,
}

/// Result of scanning a WAL directory.
#[derive(Debug)]
pub struct WalScan {
    /// All valid records, in sequence order.
    pub records: Vec<WalRecord>,
    /// Global sequence number of `records[0]` (equals `next_seq` when
    /// empty).
    pub first_seq: u64,
    /// The sequence number the next append will get.
    pub next_seq: u64,
    /// Scanned segments, oldest first.
    pub segments: Vec<SegmentMeta>,
    /// The torn tail, if one was found.
    pub torn: Option<TornTail>,
}

/// Monotonic WAL I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// Records appended by this process.
    pub records_appended: u64,
    /// fsync calls issued (and survived).
    pub fsyncs: u64,
    /// Payload + framing bytes written.
    pub bytes_written: u64,
    /// Segments created by this process.
    pub segments_created: u64,
}

/// An open, append-position WAL.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    file: File,
    path: PathBuf,
    segment_first_seq: u64,
    segment_bytes: u64,
    segment_records: u64,
    next_seq: u64,
    /// Appends since the last fsync (drives the `batch` policy).
    unsynced: u64,
    counters: WalCounters,
    closed: Vec<SegmentMeta>,
    faults: Option<Arc<IoFaultState>>,
}

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Best-effort directory fsync, so renames/creates survive power loss on
/// filesystems that need it. Failure is ignored: not all platforms support
/// opening directories for sync.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Scans one segment file. `is_final` selects the torn-tail rule; when
/// false, any invalid tail is a hard corruption error.
fn scan_segment(
    path: &Path,
    is_final: bool,
    records: &mut Vec<WalRecord>,
) -> Result<(u64, u64, Option<TornTail>)> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(PersistError::io_at("read segment", path))?;

    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(PersistError::corrupt_at(path, "bad or missing segment magic"));
    }

    let mut pos = SEGMENT_MAGIC.len();
    let mut count = 0u64;
    let torn = loop {
        if pos == bytes.len() {
            break None;
        }
        let frame_start = pos;
        let tear = |what: &str| -> Result<Option<TornTail>> {
            if is_final {
                Ok(Some(TornTail {
                    path: path.to_path_buf(),
                    valid_bytes: frame_start as u64,
                    dropped_bytes: (bytes.len() - frame_start) as u64,
                    repaired: false,
                }))
            } else {
                Err(PersistError::corrupt_at(
                    path,
                    format!("{what} at byte {frame_start} of a non-final segment"),
                ))
            }
        };
        if bytes.len() - pos < FRAME_HEADER as usize {
            break tear("partial frame header")?;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        pos += FRAME_HEADER as usize;
        if bytes.len() - pos < len {
            break tear("frame length overruns the file")?;
        }
        let payload = &bytes[pos..pos + len];
        if crc32(payload) != crc {
            break tear("frame CRC mismatch")?;
        }
        // A CRC-valid frame that does not decode is not a torn write (a
        // partial write cannot forge a matching checksum): hard error.
        let rec = WalRecord::decode(payload).map_err(|e| {
            PersistError::corrupt_at(path, format!("CRC-valid frame fails to decode: {e}"))
        })?;
        records.push(rec);
        count += 1;
        pos += len;
    };
    let valid_bytes = torn.as_ref().map_or(pos as u64, |t| t.valid_bytes);
    Ok((count, valid_bytes, torn))
}

/// Scans a WAL directory **read-only**: no truncation, no repair. `base_seq`
/// names the first sequence number when the directory holds no segments
/// (i.e. everything so far is covered by a checkpoint).
pub fn scan_dir(dir: &Path, base_seq: u64) -> Result<WalScan> {
    let mut names: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(PersistError::io_at("read WAL directory", dir))?;
    for entry in entries {
        let entry = entry.map_err(PersistError::io_at("read WAL directory", dir))?;
        let fname = entry.file_name();
        if let Some(first_seq) = fname.to_str().and_then(parse_segment_name) {
            names.push((first_seq, entry.path()));
        }
    }
    names.sort();

    if names.is_empty() {
        return Ok(WalScan {
            records: Vec::new(),
            first_seq: base_seq,
            next_seq: base_seq,
            segments: Vec::new(),
            torn: None,
        });
    }

    let first_seq = names[0].0;
    let mut records = Vec::new();
    let mut segments = Vec::new();
    let mut torn = None;
    let mut expected = first_seq;
    let last_idx = names.len() - 1;
    for (i, (seg_seq, path)) in names.iter().enumerate() {
        if *seg_seq != expected {
            return Err(PersistError::corrupt_at(
                path,
                format!("segment starts at seq {seg_seq}, expected {expected} (missing segment?)"),
            ));
        }
        let (count, bytes, t) = scan_segment(path, i == last_idx, &mut records)?;
        segments.push(SegmentMeta {
            path: path.clone(),
            first_seq: *seg_seq,
            records: count,
            bytes,
        });
        expected += count;
        torn = t;
    }
    Ok(WalScan { records, first_seq, next_seq: expected, segments, torn })
}

impl Wal {
    /// Opens (creating if necessary) the WAL in `dir` for appending:
    /// scans existing segments, truncates a torn tail, and positions at the
    /// end. `base_seq` seeds the sequence numbering when no segments exist.
    pub fn open(dir: &Path, options: WalOptions, base_seq: u64) -> Result<(Wal, WalScan)> {
        fs::create_dir_all(dir).map_err(PersistError::io_at("create WAL directory", dir))?;
        let scan = scan_dir(dir, base_seq)?;
        Self::open_scanned(dir, options, base_seq, scan)
    }

    /// [`Wal::open`] with the directory scan already done — callers that
    /// must inspect the scan before committing to an appender (the journal
    /// peeks for stale-segment detection) pass it in rather than paying a
    /// second full decode of every segment.
    pub fn open_scanned(
        dir: &Path,
        options: WalOptions,
        base_seq: u64,
        mut scan: WalScan,
    ) -> Result<(Wal, WalScan)> {
        // Repair the torn tail: truncate to the last valid frame.
        if let Some(t) = &mut scan.torn {
            let f = OpenOptions::new()
                .write(true)
                .open(&t.path)
                .map_err(PersistError::io_at("open segment for repair", &t.path))?;
            f.set_len(t.valid_bytes).map_err(PersistError::io_at("truncate torn tail", &t.path))?;
            f.sync_data().map_err(PersistError::io_at("sync repaired segment", &t.path))?;
            t.repaired = true;
        }

        let (file, path, segment_first_seq, segment_bytes, segment_records, closed) =
            match scan.segments.last() {
                Some(last) => {
                    let mut f = OpenOptions::new()
                        .write(true)
                        .open(&last.path)
                        .map_err(PersistError::io_at("open segment for append", &last.path))?;
                    f.seek(SeekFrom::Start(last.bytes))
                        .map_err(PersistError::io_at("seek to append position", &last.path))?;
                    let closed = scan.segments[..scan.segments.len() - 1].to_vec();
                    (f, last.path.clone(), last.first_seq, last.bytes, last.records, closed)
                }
                None => {
                    let (f, path) = create_segment(dir, base_seq)?;
                    (f, path, base_seq, SEGMENT_MAGIC.len() as u64, 0, Vec::new())
                }
            };

        let wal = Wal {
            dir: dir.to_path_buf(),
            options,
            file,
            path,
            segment_first_seq,
            segment_bytes,
            segment_records,
            next_seq: scan.next_seq,
            unsynced: 0,
            counters: WalCounters::default(),
            closed,
            faults: None,
        };
        Ok((wal, scan))
    }

    /// Arms deterministic I/O fault injection (tests only in spirit, but
    /// harmless in production: `None` is the default).
    pub fn set_io_faults(&mut self, faults: Arc<IoFaultState>) {
        self.faults = Some(faults);
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// I/O counters for this process's lifetime.
    pub fn counters(&self) -> WalCounters {
        self.counters
    }

    /// `(segment count, total valid bytes)` across closed + current
    /// segments.
    pub fn segment_stats(&self) -> (u64, u64) {
        let closed_bytes: u64 = self.closed.iter().map(|s| s.bytes).sum();
        (self.closed.len() as u64 + 1, closed_bytes + self.segment_bytes)
    }

    fn fsync(&mut self) -> Result<()> {
        if let Some(f) = &self.faults {
            f.on_fsync().map_err(|source| PersistError::Io {
                context: format!("fsync {}", self.path.display()),
                source,
            })?;
        }
        self.file.sync_data().map_err(PersistError::io_at("fsync", &self.path))?;
        self.counters.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Flushes pending appends to stable storage (no-op when nothing is
    /// pending or the policy is `never`).
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced > 0 && self.options.fsync != FsyncPolicy::Never {
            self.fsync()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<()> {
        // Seal the old segment: flush it down before the new one exists.
        if self.options.fsync != FsyncPolicy::Never {
            self.fsync()?;
        }
        self.closed.push(SegmentMeta {
            path: self.path.clone(),
            first_seq: self.segment_first_seq,
            records: self.segment_records,
            bytes: self.segment_bytes,
        });
        let (file, path) = create_segment(&self.dir, self.next_seq)?;
        self.file = file;
        self.path = path;
        self.segment_first_seq = self.next_seq;
        self.segment_bytes = SEGMENT_MAGIC.len() as u64;
        self.segment_records = 0;
        self.counters.segments_created += 1;
        Ok(())
    }

    /// Appends one record; returns its global sequence number. Under
    /// `FsyncPolicy::Always` the record is on stable storage when this
    /// returns.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        let payload = rec.encode();
        let frame_len = FRAME_HEADER + payload.len() as u64;
        if self.segment_records > 0
            && self.segment_bytes + frame_len > self.options.segment_max_bytes
        {
            self.rotate()?;
        }

        let mut frame = Vec::with_capacity(frame_len as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let injected = self.faults.as_ref().map_or(IoAppendFault::None, |f| f.on_append());
        match injected {
            IoAppendFault::None => {}
            IoAppendFault::CorruptCrc => {
                // Silent media corruption: flip one CRC bit, report success.
                frame[4] ^= 0x01;
            }
            IoAppendFault::ShortWrite(keep) => {
                let keep = keep.min(frame.len());
                self.file
                    .write_all(&frame[..keep])
                    .map_err(PersistError::io_at("append (short)", &self.path))?;
                let _ = self.file.flush();
                self.segment_bytes += keep as u64;
                return Err(PersistError::Io {
                    context: format!("append to {}", self.path.display()),
                    source: std::io::Error::other(format!(
                        "injected: short write ({keep} of {} bytes)",
                        frame.len()
                    )),
                });
            }
        }

        self.file.write_all(&frame).map_err(PersistError::io_at("append to", &self.path))?;
        self.segment_bytes += frame.len() as u64;
        self.segment_records += 1;
        self.counters.records_appended += 1;
        self.counters.bytes_written += frame.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;

        match self.options.fsync {
            FsyncPolicy::Always => self.fsync()?,
            FsyncPolicy::Batch => {
                self.unsynced += 1;
                if self.unsynced >= BATCH_FSYNC_INTERVAL {
                    self.fsync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Deletes every segment fully covered by `covers_seq` (records with
    /// seq < `covers_seq` are checkpointed). If the *current* segment is
    /// fully covered it is rotated out first, so the WAL always keeps an
    /// open segment. Returns the deleted paths.
    pub fn prune_through(&mut self, covers_seq: u64) -> Result<Vec<PathBuf>> {
        if self.segment_records > 0 && self.next_seq <= covers_seq {
            self.rotate()?;
        }
        let mut deleted = Vec::new();
        let mut kept = Vec::new();
        for seg in self.closed.drain(..) {
            if seg.first_seq + seg.records <= covers_seq {
                fs::remove_file(&seg.path)
                    .map_err(PersistError::io_at("delete covered segment", &seg.path))?;
                deleted.push(seg.path);
            } else {
                kept.push(seg);
            }
        }
        self.closed = kept;
        if !deleted.is_empty() {
            sync_dir(&self.dir);
        }
        Ok(deleted)
    }
}

fn create_segment(dir: &Path, first_seq: u64) -> Result<(File, PathBuf)> {
    let path = dir.join(segment_name(first_seq));
    let mut f = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(PersistError::io_at("create segment", &path))?;
    f.write_all(SEGMENT_MAGIC).map_err(PersistError::io_at("write segment header", &path))?;
    sync_dir(dir);
    Ok((f, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::{Ident, Timestamp};
    use audex_storage::IoFaultPlan;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("audex-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(i: u64) -> WalRecord {
        WalRecord::LogAppend {
            ts: Timestamp(i as i64),
            user: Ident::new("u"),
            role: Ident::new("r"),
            purpose: Ident::new("p"),
            sql: format!("SELECT c{i} FROM t"),
        }
    }

    fn opts() -> WalOptions {
        WalOptions { fsync: FsyncPolicy::Batch, segment_max_bytes: 4 * 1024 * 1024 }
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let dir = tmp("roundtrip");
        let (mut wal, scan) = Wal::open(&dir, opts(), 0).unwrap();
        assert_eq!(scan.next_seq, 0);
        for i in 0..10 {
            assert_eq!(wal.append(&rec(i)).unwrap(), i);
        }
        wal.sync().unwrap();
        drop(wal);

        let (wal2, scan2) = Wal::open(&dir, opts(), 0).unwrap();
        assert_eq!(scan2.next_seq, 10);
        assert_eq!(scan2.records.len(), 10);
        for (i, r) in scan2.records.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
        assert!(scan2.torn.is_none());
        assert_eq!(wal2.next_seq(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_scan_reassembles() {
        let dir = tmp("rotate");
        let small = WalOptions { fsync: FsyncPolicy::Never, segment_max_bytes: 200 };
        let (mut wal, _) = Wal::open(&dir, small, 0).unwrap();
        for i in 0..20 {
            wal.append(&rec(i)).unwrap();
        }
        let (segs, _) = wal.segment_stats();
        assert!(segs > 1, "tiny segment_max must force rotation, got {segs}");
        drop(wal);
        let scan = scan_dir(&dir, 0).unwrap();
        assert_eq!(scan.records.len(), 20);
        assert_eq!(scan.next_seq, 20);
        assert_eq!(scan.segments.len() as u64, segs);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_continues() {
        let dir = tmp("torn");
        let (mut wal, _) = Wal::open(&dir, opts(), 0).unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        let path = wal.path.clone();
        drop(wal);

        // Simulate a crash mid-append: garbage half-frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55, 0x01, 0x00, 0x00, 0xAA]).unwrap();
        drop(f);

        let (mut wal2, scan) = Wal::open(&dir, opts(), 0).unwrap();
        let torn = scan.torn.expect("torn tail detected");
        assert!(torn.repaired);
        assert_eq!(torn.dropped_bytes, 5);
        assert_eq!(scan.records.len(), 5);
        // The log keeps working after repair, and a fresh scan is clean.
        assert_eq!(wal2.append(&rec(5)).unwrap(), 5);
        wal2.sync().unwrap();
        drop(wal2);
        let scan3 = scan_dir(&dir, 0).unwrap();
        assert!(scan3.torn.is_none());
        assert_eq!(scan3.records.len(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_in_tail_drops_from_that_record() {
        let dir = tmp("crc");
        let plan = IoFaultPlan::new().corrupt_crc(4);
        let (mut wal, _) = Wal::open(&dir, opts(), 0).unwrap();
        wal.set_io_faults(Arc::new(IoFaultState::new(plan)));
        for i in 0..6 {
            wal.append(&rec(i)).unwrap(); // corruption is silent
        }
        wal.sync().unwrap();
        drop(wal);

        let (_, scan) = Wal::open(&dir, opts(), 0).unwrap();
        // Records 0..3 survive; the corrupt frame and everything after it
        // fall to the torn-tail rule.
        assert_eq!(scan.records.len(), 3);
        let torn = scan.torn.expect("CRC mismatch at tail treated as torn");
        assert!(torn.dropped_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_non_final_segment_is_a_hard_error() {
        let dir = tmp("midcorrupt");
        let small = WalOptions { fsync: FsyncPolicy::Never, segment_max_bytes: 200 };
        let (mut wal, _) = Wal::open(&dir, small, 0).unwrap();
        for i in 0..20 {
            wal.append(&rec(i)).unwrap();
        }
        drop(wal);
        let scan = scan_dir(&dir, 0).unwrap();
        assert!(scan.segments.len() >= 2);
        // Flip a payload byte in the FIRST segment.
        let victim = &scan.segments[0].path;
        let mut bytes = fs::read(victim).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(victim, bytes).unwrap();
        let err = scan_dir(&dir, 0).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("non-final"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_fault_fails_append_and_recovery_truncates() {
        let dir = tmp("short");
        let plan = IoFaultPlan::new().short_write(3, 6);
        let (mut wal, _) = Wal::open(&dir, opts(), 0).unwrap();
        wal.set_io_faults(Arc::new(IoFaultState::new(plan)));
        wal.append(&rec(0)).unwrap();
        wal.append(&rec(1)).unwrap();
        let err = wal.append(&rec(2)).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        wal.sync().unwrap();
        drop(wal);

        let (_, scan) = Wal::open(&dir, opts(), 0).unwrap();
        assert_eq!(scan.records.len(), 2, "torn frame dropped");
        assert!(scan.torn.is_some());
        assert_eq!(scan.next_seq, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_fault_surfaces_as_io_error() {
        let dir = tmp("fsync");
        let plan = IoFaultPlan::new().fail_fsync(1);
        let always = WalOptions { fsync: FsyncPolicy::Always, segment_max_bytes: 1 << 20 };
        let (mut wal, _) = Wal::open(&dir, always, 0).unwrap();
        wal.set_io_faults(Arc::new(IoFaultState::new(plan)));
        let err = wal.append(&rec(0)).unwrap_err();
        assert!(err.to_string().contains("fsync #1"), "{err}");
        // The next fsync succeeds; the record itself was written.
        wal.append(&rec(1)).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_through_deletes_covered_segments_only() {
        let dir = tmp("prune");
        let small = WalOptions { fsync: FsyncPolicy::Never, segment_max_bytes: 200 };
        let (mut wal, _) = Wal::open(&dir, small, 0).unwrap();
        for i in 0..20 {
            wal.append(&rec(i)).unwrap();
        }
        let scan_before = scan_dir(&dir, 0).unwrap();
        let first_seg_records = scan_before.segments[0].records;

        // Covering only part of the first segment deletes nothing.
        assert!(wal.prune_through(first_seg_records - 1).unwrap().is_empty());
        // Covering it exactly deletes exactly it.
        let deleted = wal.prune_through(first_seg_records).unwrap();
        assert_eq!(deleted.len(), 1);
        let scan = scan_dir(&dir, 0).unwrap();
        assert_eq!(scan.first_seq, first_seg_records);
        assert_eq!(scan.next_seq, 20);

        // Covering everything rotates the open segment out and deletes all
        // closed ones; the log continues at seq 20 from a fresh segment.
        wal.prune_through(20).unwrap();
        let scan = scan_dir(&dir, 0).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.first_seq, 20);
        wal.append(&rec(20)).unwrap();
        drop(wal);
        let scan = scan_dir(&dir, 0).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.next_seq, 21);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_with_base_seq_starts_there() {
        let dir = tmp("base");
        let (mut wal, scan) = Wal::open(&dir, opts(), 42).unwrap();
        assert_eq!(scan.next_seq, 42);
        assert_eq!(wal.append(&rec(0)).unwrap(), 42);
        drop(wal);
        let scan = scan_dir(&dir, 0).unwrap();
        assert_eq!(scan.first_seq, 42);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_parsing() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("batch".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Batch);
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::Batch.to_string(), "batch");
    }
}
