//! Checkpoint snapshots.
//!
//! A checkpoint makes recovery cheap by storing two things:
//!
//! 1. the **logical WAL prefix** it covers (`records`, in original sequence
//!    order) — replaying it rebuilds the database, the query log, and the
//!    registered-audit list without touching pruned segments; and
//! 2. the **expensive derived state** over that prefix — touch-index
//!    footprints, per-audit batch states, service counters — so recovery
//!    skips re-executing every logged query's footprint (the dominant cost).
//!
//! On disk a checkpoint is `ckpt-<covers_seq>.ax`: an 8-byte magic, the
//! encoded body, and a trailing CRC-32 over the body. It is written to a
//! temp file, fsynced, and renamed into place, so a crash mid-checkpoint
//! leaves the previous one intact. The newest two are kept; loading falls
//! back to the older one if the newest fails its CRC.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use audex_core::{AuditBatchState, QueryFootprint};
use audex_log::QueryId;
use audex_sql::Timestamp;
use audex_storage::VersionStore;
use audex_triage::TriageItem;

use crate::codec::{self, crc32, Dec, DecodeError, Enc};
use crate::error::{PersistError, Result};
use crate::record::WalRecord;
use crate::wal::sync_dir;

/// Checkpoint header: magic + format version.
const CHECKPOINT_MAGIC: &[u8; 8] = b"AXCKP\x01\0\0";

/// How many checkpoint files to keep on disk (newest-first fallback).
pub const CHECKPOINTS_KEPT: usize = 2;

/// A wholesale snapshot of the MVCC database at checkpoint time: the
/// version stores plus the clock. Recovery restores it directly
/// (`Database::from_mvcc_stores`) instead of re-applying the covered
/// prefix's DML record by record, so recovery cost stops scaling with the
/// change history. Absent for replay-mode services and for checkpoints
/// written before this field existed — both fall back to record-by-record
/// rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct DbSnapshot {
    /// The database clock (latest committed instant) at checkpoint time.
    pub last_ts: Timestamp,
    /// One version store per table, sorted by table name.
    pub stores: Vec<VersionStore>,
}

/// A materialized snapshot of service state after `covers_seq` records.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Records with seq < `covers_seq` are covered by this checkpoint.
    pub covers_seq: u64,
    /// The covered logical prefix, in original sequence order.
    pub records: Vec<WalRecord>,
    /// Touch-index footprints over the covered prefix.
    pub footprints: Vec<QueryFootprint>,
    /// Queries the index skipped under resource-governor pressure.
    pub skipped: Vec<QueryId>,
    /// Per-audit batch states, in surviving-registration order.
    pub audit_states: Vec<AuditBatchState>,
    /// Service counters, in the service's canonical order:
    /// (queries_ingested, queries_rejected, dml_statements,
    /// governor_trips, events_emitted).
    pub counters: [u64; 5],
    /// Review-queue items (with their ack/dismiss states), in ascending
    /// query-id order.
    pub triage: Vec<TriageItem>,
    /// The MVCC database snapshot, when the service runs in MVCC mode.
    pub db: Option<DbSnapshot>,
}

fn checkpoint_name(covers_seq: u64) -> String {
    format!("ckpt-{covers_seq:020}.ax")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".ax")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

impl CheckpointState {
    fn encode_body(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.covers_seq);
        e.u32(self.records.len() as u32);
        for rec in &self.records {
            let payload = rec.encode();
            e.u32(payload.len() as u32);
            e.bytes(&payload);
        }
        e.u32(self.footprints.len() as u32);
        for fp in &self.footprints {
            codec::put_footprint(&mut e, fp);
        }
        e.u32(self.skipped.len() as u32);
        for id in &self.skipped {
            e.u64(id.0);
        }
        e.u32(self.audit_states.len() as u32);
        for st in &self.audit_states {
            codec::put_audit_state(&mut e, st);
        }
        for c in self.counters {
            e.u64(c);
        }
        e.u32(self.triage.len() as u32);
        for it in &self.triage {
            codec::put_triage_item(&mut e, it);
        }
        match &self.db {
            Some(snap) => {
                e.bool(true);
                e.i64(snap.last_ts.0);
                e.u32(snap.stores.len() as u32);
                for s in &snap.stores {
                    codec::put_version_store(&mut e, s);
                }
            }
            None => e.bool(false),
        }
        e.into_bytes()
    }

    fn decode_body(bytes: &[u8]) -> std::result::Result<CheckpointState, DecodeError> {
        let mut d = Dec::new(bytes);
        let covers_seq = d.u64()?;
        let n = d.seq_len()?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let len = d.seq_len()?;
            records.push(WalRecord::decode(d.bytes(len)?)?);
        }
        let n = d.seq_len()?;
        let mut footprints = Vec::with_capacity(n);
        for _ in 0..n {
            footprints.push(codec::get_footprint(&mut d)?);
        }
        let n = d.seq_len()?;
        let mut skipped = Vec::with_capacity(n);
        for _ in 0..n {
            skipped.push(QueryId(d.u64()?));
        }
        let n = d.seq_len()?;
        let mut audit_states = Vec::with_capacity(n);
        for _ in 0..n {
            audit_states.push(codec::get_audit_state(&mut d)?);
        }
        let mut counters = [0u64; 5];
        for c in &mut counters {
            *c = d.u64()?;
        }
        let n = d.seq_len()?;
        let mut triage = Vec::with_capacity(n);
        for _ in 0..n {
            triage.push(codec::get_triage_item(&mut d)?);
        }
        // Checkpoints written before the MVCC snapshot existed end here;
        // they decode with no snapshot and recover record by record.
        let db = if d.is_exhausted() {
            None
        } else if d.bool()? {
            let last_ts = Timestamp(d.i64()?);
            let n = d.seq_len()?;
            let mut stores = Vec::with_capacity(n);
            for _ in 0..n {
                stores.push(codec::get_version_store(&mut d)?);
            }
            Some(DbSnapshot { last_ts, stores })
        } else {
            None
        };
        if !d.is_exhausted() {
            return Err(DecodeError { expected: "end of checkpoint", offset: d.offset() });
        }
        Ok(CheckpointState {
            covers_seq,
            records,
            footprints,
            skipped,
            audit_states,
            counters,
            triage,
            db,
        })
    }

    /// Writes this checkpoint atomically into `dir` (temp file + fsync +
    /// rename + directory sync). Returns the final path.
    pub fn write(&self, dir: &Path) -> Result<PathBuf> {
        fs::create_dir_all(dir).map_err(PersistError::io_at("create store directory", dir))?;
        let body = self.encode_body();
        let final_path = dir.join(checkpoint_name(self.covers_seq));
        let tmp_path = dir.join(format!("ckpt-{:020}.tmp", self.covers_seq));
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp_path)
                .map_err(PersistError::io_at("create checkpoint temp", &tmp_path))?;
            f.write_all(CHECKPOINT_MAGIC)
                .and_then(|()| f.write_all(&body))
                .and_then(|()| f.write_all(&crc32(&body).to_le_bytes()))
                .map_err(PersistError::io_at("write checkpoint", &tmp_path))?;
            f.sync_data().map_err(PersistError::io_at("fsync checkpoint", &tmp_path))?;
        }
        fs::rename(&tmp_path, &final_path)
            .map_err(PersistError::io_at("publish checkpoint", &final_path))?;
        sync_dir(dir);
        Ok(final_path)
    }

    /// Loads one checkpoint file, verifying magic and CRC.
    pub fn load(path: &Path) -> Result<CheckpointState> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(PersistError::io_at("read checkpoint", path))?;
        let magic_len = CHECKPOINT_MAGIC.len();
        if bytes.len() < magic_len + 4 || &bytes[..magic_len] != CHECKPOINT_MAGIC {
            return Err(PersistError::corrupt_at(path, "bad or missing checkpoint magic"));
        }
        let body = &bytes[magic_len..bytes.len() - 4];
        let tail = &bytes[bytes.len() - 4..];
        let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        if crc32(body) != stored {
            return Err(PersistError::corrupt_at(path, "checkpoint CRC mismatch"));
        }
        let state = CheckpointState::decode_body(body)
            .map_err(|e| PersistError::corrupt_at(path, format!("checkpoint body: {e}")))?;
        let named = path.file_name().and_then(|n| n.to_str()).and_then(parse_checkpoint_name);
        if named != Some(state.covers_seq) {
            return Err(PersistError::corrupt_at(
                path,
                format!("file name disagrees with body covers_seq {}", state.covers_seq),
            ));
        }
        Ok(state)
    }
}

/// Lists checkpoint files in `dir`, oldest first.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = fs::read_dir(dir).map_err(PersistError::io_at("read store directory", dir))?;
    for entry in entries {
        let entry = entry.map_err(PersistError::io_at("read store directory", dir))?;
        let fname = entry.file_name();
        if let Some(seq) = fname.to_str().and_then(parse_checkpoint_name) {
            found.push((seq, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Loads the newest loadable checkpoint, falling back past corrupt ones.
/// Returns the checkpoint (if any) and human-readable notes about files
/// that were skipped.
pub fn load_latest(dir: &Path) -> Result<(Option<CheckpointState>, Vec<String>)> {
    let mut notes = Vec::new();
    let mut files = list_checkpoints(dir)?;
    files.reverse(); // newest first
    for (_, path) in files {
        match CheckpointState::load(&path) {
            Ok(state) => return Ok((Some(state), notes)),
            Err(e @ PersistError::Corrupt { .. }) => {
                notes.push(format!("skipping {e}"));
            }
            Err(e) => return Err(e),
        }
    }
    Ok((None, notes))
}

/// Deletes all but the newest [`CHECKPOINTS_KEPT`] checkpoints. Returns the
/// deleted paths.
pub fn prune_old(dir: &Path) -> Result<Vec<PathBuf>> {
    let files = list_checkpoints(dir)?;
    let mut deleted = Vec::new();
    if files.len() > CHECKPOINTS_KEPT {
        for (_, path) in &files[..files.len() - CHECKPOINTS_KEPT] {
            fs::remove_file(path).map_err(PersistError::io_at("delete old checkpoint", path))?;
            deleted.push(path.clone());
        }
        sync_dir(dir);
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::{Ident, Timestamp};
    use std::collections::BTreeSet;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("audex-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(covers_seq: u64) -> CheckpointState {
        CheckpointState {
            covers_seq,
            records: vec![
                WalRecord::LogAppend {
                    ts: Timestamp(1),
                    user: Ident::new("u"),
                    role: Ident::new("r"),
                    purpose: Ident::new("p"),
                    sql: "SELECT a FROM t".into(),
                },
                WalRecord::Register {
                    name: "a1".into(),
                    expr: "AUDIT a FROM t".into(),
                    now: Timestamp(2),
                },
            ],
            footprints: vec![QueryFootprint {
                id: QueryId(0),
                bases: [Ident::new("t")].into(),
                covered: [(Ident::new("t"), Ident::new("a"))].into(),
                combos: vec![],
                value_rows: vec![],
            }],
            skipped: vec![QueryId(9)],
            audit_states: vec![AuditBatchState {
                touched: [0usize].into(),
                covered: BTreeSet::new(),
                exposure: Default::default(),
                contributing: vec![QueryId(0)],
            }],
            counters: [1, 2, 3, 4, 5],
            triage: vec![TriageItem {
                query: QueryId(0),
                ts: Timestamp(1),
                user: Ident::new("u"),
                role: Ident::new("r"),
                purpose: Ident::new("p"),
                suspicion: 0.5,
                audits: [audex_core::AuditId(0)].into(),
                covered: [(Ident::new("t"), Ident::new("a"))].into(),
                touched: 1,
                exposed: 0,
                state: audex_triage::ReviewState::Acked,
            }],
            db: None,
        }
    }

    fn sample_with_snapshot(covers_seq: u64) -> CheckpointState {
        use audex_sql::ast::TypeName;
        use audex_storage::{ChangeOp, ChangeRecord, Schema, Tid, Value};
        let mut store = VersionStore::new(
            Ident::new("t"),
            Schema::new(vec![(Ident::new("a"), TypeName::Int)]).unwrap(),
            Timestamp(0),
        );
        store
            .record(ChangeRecord {
                ts: Timestamp(5),
                op: ChangeOp::Insert,
                tid: Tid(1),
                after: Some(vec![Value::Int(7)]),
            })
            .unwrap();
        CheckpointState {
            db: Some(DbSnapshot { last_ts: Timestamp(5), stores: vec![store] }),
            ..sample(covers_seq)
        }
    }

    #[test]
    fn write_load_round_trips() {
        let dir = tmp("roundtrip");
        let state = sample(2);
        let path = state.write(&dir).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("ckpt-"));
        let loaded = CheckpointState::load(&path).unwrap();
        assert_eq!(loaded, state);
        let (latest, notes) = load_latest(&dir).unwrap();
        assert_eq!(latest.unwrap(), state);
        assert!(notes.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_checkpoint_round_trips() {
        let dir = tmp("snapshot");
        let state = sample_with_snapshot(2);
        let path = state.write(&dir).unwrap();
        let loaded = CheckpointState::load(&path).unwrap();
        assert_eq!(loaded, state);
        let snap = loaded.db.unwrap();
        assert_eq!(snap.last_ts, Timestamp(5));
        assert_eq!(snap.stores.len(), 1);
        assert_eq!(snap.stores[0].versions().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_snapshot_checkpoint_body_still_decodes() {
        // A body that simply ends after the triage section (the layout
        // before the snapshot field existed) must decode as `db: None`.
        let state = sample(2);
        let mut body = state.encode_body();
        assert_eq!(body.pop(), Some(0), "trailing byte is the absent-snapshot marker");
        let decoded = CheckpointState::decode_body(&body).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp("fallback");
        let older = sample(2);
        older.write(&dir).unwrap();
        let mut newer = sample(2);
        newer.covers_seq = 5;
        let newer_path = newer.write(&dir).unwrap();

        // Flip a byte in the newest checkpoint's body.
        let mut bytes = fs::read(&newer_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newer_path, bytes).unwrap();

        let (latest, notes) = load_latest(&dir).unwrap();
        assert_eq!(latest.unwrap().covers_seq, 2, "fell back to the older checkpoint");
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("skipping"), "{notes:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_loadable_checkpoint_is_not_an_error() {
        let dir = tmp("none");
        let (latest, notes) = load_latest(&dir).unwrap();
        assert!(latest.is_none());
        assert!(notes.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest_two() {
        let dir = tmp("prune");
        for seq in [1u64, 3, 7] {
            sample(seq).write(&dir).unwrap();
        }
        let deleted = prune_old(&dir).unwrap();
        assert_eq!(deleted.len(), 1);
        let left = list_checkpoints(&dir).unwrap();
        assert_eq!(left.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![3, 7]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renamed_checkpoint_is_rejected() {
        let dir = tmp("rename");
        let path = sample(2).write(&dir).unwrap();
        let bad = dir.join(checkpoint_name(9));
        fs::rename(&path, &bad).unwrap();
        let err = CheckpointState::load(&bad).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
