//! `audex-persist` — the durable audit store.
//!
//! Everything below the service is deliberately in-memory (the paper's
//! setting); this crate adds the one thing memory cannot give: surviving a
//! crash. It provides
//!
//! - a segmented, CRC-guarded **write-ahead log** ([`wal`]) of the logical
//!   events that determine service state — DML changes, query-log appends
//!   with their policy annotations, audit registrations;
//! - periodic **checkpoint snapshots** ([`checkpoint`]) storing the covered
//!   record prefix plus the expensive derived state (touch-index
//!   footprints, per-audit batch states), so recovery does not re-execute
//!   every logged query's footprint;
//! - **crash recovery** ([`journal`]) that tolerates a torn or truncated
//!   tail: scan to the last valid record, truncate, continue;
//! - the **multi-tenant layout contract** ([`tenants`]): the default
//!   tenant's store stays at the data-dir root (no migration), named
//!   tenants get independent stores under `tenants/<name>/`, and dropped
//!   tenants are retired by rename, never deleted.
//!
//! The [`journal::Journal`] is the only handle the service needs: it is an
//! [`audex_storage::ChangeSink`] and an [`audex_log::LogSink`], so once
//! attached, every committed mutation and log append is journaled
//! synchronously, in order, exactly once.
//!
//! Std-only by workspace policy: the codec ([`codec`]) is hand-rolled
//! little-endian framing with a CRC-32 per WAL frame and per checkpoint
//! body.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod journal;
pub mod record;
pub mod tenants;
pub mod wal;

pub use checkpoint::{CheckpointState, DbSnapshot, CHECKPOINTS_KEPT};
pub use error::{PersistError, Result};
pub use journal::{read_store, CheckpointDerived, Journal, JournalCounters, Recovered};
pub use record::WalRecord;
pub use wal::{FsyncPolicy, SegmentMeta, TornTail, Wal, WalOptions, WalScan, BATCH_FSYNC_INTERVAL};
