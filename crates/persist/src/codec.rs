//! Hand-rolled binary codec: little-endian framing plus encoders/decoders
//! for the domain types that appear in WAL records and checkpoints.
//!
//! No serde, no external crates — the workspace is std-only by policy. The
//! encoding is deliberately boring: fixed-width little-endian integers,
//! length-prefixed strings, one tag byte per enum. Every decoder validates
//! length before reading and returns a structured error instead of
//! panicking, because the input is whatever survived a crash.

use audex_core::attrspec::ResolvedColumn;
use audex_core::{AuditBatchState, AuditId, BaseColumn, QueryFootprint};
use audex_log::QueryId;
use audex_sql::ast::TypeName;
use audex_sql::{Ident, Timestamp};
use audex_storage::mvcc::{ChangeMeta, Version};
use audex_storage::{ChangeOp, ChangeRecord, Schema, Tid, Value, VersionStore};
use audex_triage::{RedactedScore, ReviewState, TriageItem};
use std::collections::{BTreeMap, BTreeSet};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// guarding every WAL frame and checkpoint body. Slicing-by-8: checkpoint
/// bodies run to hundreds of kilobytes and sit on the recovery path, where
/// the classic byte-at-a-time loop was a measurable slice of reopen time.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Eight 256-entry tables built on first use; 8 KiB, computed once.
    // TABLES[0] is the classic byte table; TABLES[k] shifts through k more
    // bytes, so eight lookups advance the CRC over eight input bytes.
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        let base = t[0];
        for k in 1..8 {
            let prev = t[k - 1];
            for (slot, &p) in t[k].iter_mut().zip(prev.iter()) {
                *slot = base[(p & 0xFF) as usize] ^ (p >> 8);
            }
        }
        t
    });
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Decoding failure: what was expected, at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What the decoder was reading.
    pub expected: &'static str,
    /// Byte offset into the buffer.
    pub offset: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends raw bytes (for embedding already-encoded payloads).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its IEEE-754 bit pattern (exact round-trip,
    /// including NaN payloads and signed zero).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DecodeError { expected, offset: self.pos })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Borrows the next `n` bytes without copying (for length-prefixed
    /// embedded payloads; checkpoint bodies hold thousands of them).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n, "bytes")
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an f64 bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError { expected: "bool (0 or 1)", offset: self.pos - 1 }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string bytes")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError { expected: "valid UTF-8", offset: self.pos - len })
    }

    /// Reads a length prefix for a sequence, sanity-capped so a corrupt
    /// length cannot trigger a huge allocation before element decoding
    /// naturally fails.
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            // Every element takes at least one byte; a count beyond the
            // remaining bytes is corrupt.
            return Err(DecodeError {
                expected: "plausible sequence length",
                offset: self.pos - 4,
            });
        }
        Ok(n)
    }
}

// --- Domain types ---------------------------------------------------------

/// Encodes an [`Ident`], preserving exact text and quoting.
pub fn put_ident(e: &mut Enc, id: &Ident) {
    e.str(&id.value);
    e.bool(id.quoted);
}

/// Decodes an [`Ident`].
pub fn get_ident(d: &mut Dec<'_>) -> Result<Ident, DecodeError> {
    let value = d.str()?;
    let quoted = d.bool()?;
    Ok(Ident { value, quoted })
}

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_TS: u8 = 5;

/// Encodes a [`Value`].
pub fn put_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(VAL_NULL),
        Value::Bool(b) => {
            e.u8(VAL_BOOL);
            e.bool(*b);
        }
        Value::Int(i) => {
            e.u8(VAL_INT);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(VAL_FLOAT);
            e.f64(*f);
        }
        Value::Str(s) => {
            e.u8(VAL_STR);
            e.str(s);
        }
        Value::Ts(t) => {
            e.u8(VAL_TS);
            e.i64(t.0);
        }
    }
}

/// Decodes a [`Value`].
pub fn get_value(d: &mut Dec<'_>) -> Result<Value, DecodeError> {
    match d.u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_BOOL => Ok(Value::Bool(d.bool()?)),
        VAL_INT => Ok(Value::Int(d.i64()?)),
        VAL_FLOAT => Ok(Value::Float(d.f64()?)),
        VAL_STR => Ok(Value::Str(d.str()?)),
        VAL_TS => Ok(Value::Ts(Timestamp(d.i64()?))),
        _ => Err(DecodeError { expected: "value tag", offset: d.offset() - 1 }),
    }
}

/// Encodes a row (a vector of values).
pub fn put_row(e: &mut Enc, row: &[Value]) {
    e.u32(row.len() as u32);
    for v in row {
        put_value(e, v);
    }
}

/// Decodes a row.
pub fn get_row(d: &mut Dec<'_>) -> Result<Vec<Value>, DecodeError> {
    let n = d.seq_len()?;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(d)?);
    }
    Ok(row)
}

fn type_tag(t: TypeName) -> u8 {
    match t {
        TypeName::Int => 0,
        TypeName::Float => 1,
        TypeName::Text => 2,
        TypeName::Bool => 3,
        TypeName::Timestamp => 4,
    }
}

fn type_from_tag(tag: u8, offset: usize) -> Result<TypeName, DecodeError> {
    match tag {
        0 => Ok(TypeName::Int),
        1 => Ok(TypeName::Float),
        2 => Ok(TypeName::Text),
        3 => Ok(TypeName::Bool),
        4 => Ok(TypeName::Timestamp),
        _ => Err(DecodeError { expected: "type tag", offset }),
    }
}

/// Encodes a [`Schema`] as its ordered `(name, type)` pairs.
pub fn put_schema(e: &mut Enc, s: &Schema) {
    let cols: Vec<_> = s.iter().collect();
    e.u32(cols.len() as u32);
    for (name, ty) in cols {
        put_ident(e, name);
        e.u8(type_tag(*ty));
    }
}

/// Decodes a [`Schema`]; re-runs its duplicate-column validation.
pub fn get_schema(d: &mut Dec<'_>) -> Result<Schema, DecodeError> {
    let n = d.seq_len()?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_ident(d)?;
        let off = d.offset();
        let ty = type_from_tag(d.u8()?, off)?;
        cols.push((name, ty));
    }
    Schema::new(cols)
        .map_err(|_| DecodeError { expected: "unique column names", offset: d.offset() })
}

fn op_tag(op: ChangeOp) -> u8 {
    match op {
        ChangeOp::Insert => 0,
        ChangeOp::Update => 1,
        ChangeOp::Delete => 2,
    }
}

fn op_from_tag(tag: u8, offset: usize) -> Result<ChangeOp, DecodeError> {
    match tag {
        0 => Ok(ChangeOp::Insert),
        1 => Ok(ChangeOp::Update),
        2 => Ok(ChangeOp::Delete),
        _ => Err(DecodeError { expected: "change-op tag", offset }),
    }
}

/// Encodes a backlog [`ChangeRecord`].
pub fn put_change(e: &mut Enc, rec: &ChangeRecord) {
    e.i64(rec.ts.0);
    e.u8(op_tag(rec.op));
    e.u64(rec.tid.0);
    match &rec.after {
        Some(row) => {
            e.bool(true);
            put_row(e, row);
        }
        None => e.bool(false),
    }
}

/// Decodes a backlog [`ChangeRecord`].
pub fn get_change(d: &mut Dec<'_>) -> Result<ChangeRecord, DecodeError> {
    let ts = Timestamp(d.i64()?);
    let off = d.offset();
    let op = op_from_tag(d.u8()?, off)?;
    let tid = Tid(d.u64()?);
    let after = if d.bool()? { Some(get_row(d)?) } else { None };
    Ok(ChangeRecord { ts, op, tid, after })
}

fn put_opt_u32(e: &mut Enc, v: Option<u32>) {
    match v {
        Some(n) => {
            e.bool(true);
            e.u32(n);
        }
        None => e.bool(false),
    }
}

fn get_opt_u32(d: &mut Dec<'_>) -> Result<Option<u32>, DecodeError> {
    Ok(if d.bool()? { Some(d.u32()?) } else { None })
}

/// Encodes one MVCC tuple [`Version`] — its `[xmin, xmax)` interval, the
/// closing change index, and the row image.
pub fn put_version(e: &mut Enc, v: &Version) {
    e.u64(v.tid.0);
    e.i64(v.xmin.0);
    e.i64(v.xmax.0);
    put_opt_u32(e, v.closed_by);
    put_row(e, &v.row);
}

/// Decodes one MVCC tuple [`Version`].
pub fn get_version(d: &mut Dec<'_>) -> Result<Version, DecodeError> {
    let tid = Tid(d.u64()?);
    let xmin = Timestamp(d.i64()?);
    let xmax = Timestamp(d.i64()?);
    let closed_by = get_opt_u32(d)?;
    let row = get_row(d)?;
    Ok(Version { tid, xmin, xmax, closed_by, row })
}

/// Encodes one MVCC [`ChangeMeta`] entry (the change log a store keeps
/// alongside its versions).
pub fn put_change_meta(e: &mut Enc, m: &ChangeMeta) {
    e.i64(m.ts.0);
    e.u8(op_tag(m.op));
    e.u64(m.tid.0);
    put_opt_u32(e, m.opened);
}

/// Decodes one MVCC [`ChangeMeta`] entry.
pub fn get_change_meta(d: &mut Dec<'_>) -> Result<ChangeMeta, DecodeError> {
    let ts = Timestamp(d.i64()?);
    let off = d.offset();
    let op = op_from_tag(d.u8()?, off)?;
    let tid = Tid(d.u64()?);
    let opened = get_opt_u32(d)?;
    Ok(ChangeMeta { ts, op, tid, opened })
}

/// Encodes a whole MVCC [`VersionStore`]: identity, schema, and the two
/// parallel arrays [`VersionStore::from_parts`] rebuilds from.
pub fn put_version_store(e: &mut Enc, s: &VersionStore) {
    put_ident(e, s.name());
    put_schema(e, s.schema());
    e.i64(s.created_at().0);
    e.u32(s.versions().len() as u32);
    for v in s.versions() {
        put_version(e, v);
    }
    e.u32(s.meta().len() as u32);
    for m in s.meta() {
        put_change_meta(e, m);
    }
}

/// Decodes an MVCC [`VersionStore`] (indexes and live counts are derived).
pub fn get_version_store(d: &mut Dec<'_>) -> Result<VersionStore, DecodeError> {
    let name = get_ident(d)?;
    let schema = get_schema(d)?;
    let created_at = Timestamp(d.i64()?);
    let n = d.seq_len()?;
    let mut versions = Vec::with_capacity(n);
    for _ in 0..n {
        versions.push(get_version(d)?);
    }
    let n = d.seq_len()?;
    let mut meta = Vec::with_capacity(n);
    for _ in 0..n {
        meta.push(get_change_meta(d)?);
    }
    Ok(VersionStore::from_parts(name, schema, created_at, versions, meta))
}

fn put_base_column(e: &mut Enc, bc: &BaseColumn) {
    put_ident(e, &bc.0);
    put_ident(e, &bc.1);
}

fn get_base_column(d: &mut Dec<'_>) -> Result<BaseColumn, DecodeError> {
    Ok((get_ident(d)?, get_ident(d)?))
}

fn put_resolved_column(e: &mut Enc, rc: &ResolvedColumn) {
    put_ident(e, &rc.table);
    put_ident(e, &rc.column);
}

fn get_resolved_column(d: &mut Dec<'_>) -> Result<ResolvedColumn, DecodeError> {
    let table = get_ident(d)?;
    let column = get_ident(d)?;
    Ok(ResolvedColumn { table, column })
}

/// Encodes a touch-index [`QueryFootprint`].
pub fn put_footprint(e: &mut Enc, fp: &QueryFootprint) {
    e.u64(fp.id.0);
    e.u32(fp.bases.len() as u32);
    for b in &fp.bases {
        put_ident(e, b);
    }
    e.u32(fp.covered.len() as u32);
    for bc in &fp.covered {
        put_base_column(e, bc);
    }
    e.u32(fp.combos.len() as u32);
    for combo in &fp.combos {
        e.u32(combo.len() as u32);
        for (table, tids) in combo {
            put_ident(e, table);
            e.u32(tids.len() as u32);
            for t in tids {
                e.u64(t.0);
            }
        }
    }
    e.u32(fp.value_rows.len() as u32);
    for row in &fp.value_rows {
        e.u32(row.len() as u32);
        for (bc, v) in row {
            put_base_column(e, bc);
            put_value(e, v);
        }
    }
}

/// Decodes a touch-index [`QueryFootprint`]. Sets and maps are collected
/// through `FromIterator` (not element-wise `insert`) so the standard
/// library's bulk tree construction kicks in — checkpoints hold one
/// footprint per logged query, making this the hottest decoder.
pub fn get_footprint(d: &mut Dec<'_>) -> Result<QueryFootprint, DecodeError> {
    let id = QueryId(d.u64()?);
    let bases = (0..d.seq_len()?).map(|_| get_ident(d)).collect::<Result<BTreeSet<_>, _>>()?;
    let covered =
        (0..d.seq_len()?).map(|_| get_base_column(d)).collect::<Result<BTreeSet<_>, _>>()?;
    let n_combos = d.seq_len()?;
    let mut combos = Vec::with_capacity(n_combos);
    for _ in 0..n_combos {
        let m = (0..d.seq_len()?)
            .map(|_| {
                let table = get_ident(d)?;
                let tids =
                    (0..d.seq_len()?).map(|_| Ok(Tid(d.u64()?))).collect::<Result<_, _>>()?;
                Ok::<_, DecodeError>((table, tids))
            })
            .collect::<Result<BTreeMap<Ident, BTreeSet<Tid>>, _>>()?;
        combos.push(m);
    }
    let n_rows = d.seq_len()?;
    let mut value_rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let n = d.seq_len()?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            let bc = get_base_column(d)?;
            let v = get_value(d)?;
            row.push((bc, v));
        }
        value_rows.push(row);
    }
    Ok(QueryFootprint { id, bases, covered, combos, value_rows })
}

/// Encodes a triage [`RedactedScore`].
pub fn put_redacted_score(e: &mut Enc, s: &RedactedScore) {
    e.u64(s.audit.0);
    e.f64(s.fact_coverage);
    e.f64(s.column_coverage);
    e.f64(s.closeness);
    e.u64(s.touched);
    e.u64(s.exposed);
    e.u32(s.covered.len() as u32);
    for bc in &s.covered {
        put_base_column(e, bc);
    }
}

/// Decodes a triage [`RedactedScore`].
pub fn get_redacted_score(d: &mut Dec<'_>) -> Result<RedactedScore, DecodeError> {
    let audit = AuditId(d.u64()?);
    let fact_coverage = d.f64()?;
    let column_coverage = d.f64()?;
    let closeness = d.f64()?;
    let touched = d.u64()?;
    let exposed = d.u64()?;
    let mut covered = Vec::new();
    for _ in 0..d.seq_len()? {
        covered.push(get_base_column(d)?);
    }
    Ok(RedactedScore {
        audit,
        fact_coverage,
        column_coverage,
        closeness,
        touched,
        exposed,
        covered,
    })
}

fn state_tag(s: ReviewState) -> u8 {
    match s {
        ReviewState::Open => 0,
        ReviewState::Acked => 1,
        ReviewState::Dismissed => 2,
    }
}

fn state_from_tag(tag: u8, offset: usize) -> Result<ReviewState, DecodeError> {
    match tag {
        0 => Ok(ReviewState::Open),
        1 => Ok(ReviewState::Acked),
        2 => Ok(ReviewState::Dismissed),
        _ => Err(DecodeError { expected: "review-state tag", offset }),
    }
}

/// Encodes a review-queue [`TriageItem`].
pub fn put_triage_item(e: &mut Enc, it: &TriageItem) {
    e.u64(it.query.0);
    e.i64(it.ts.0);
    put_ident(e, &it.user);
    put_ident(e, &it.role);
    put_ident(e, &it.purpose);
    e.f64(it.suspicion);
    e.u32(it.audits.len() as u32);
    for a in &it.audits {
        e.u64(a.0);
    }
    e.u32(it.covered.len() as u32);
    for bc in &it.covered {
        put_base_column(e, bc);
    }
    e.u64(it.touched);
    e.u64(it.exposed);
    e.u8(state_tag(it.state));
}

/// Decodes a review-queue [`TriageItem`].
pub fn get_triage_item(d: &mut Dec<'_>) -> Result<TriageItem, DecodeError> {
    let query = QueryId(d.u64()?);
    let ts = Timestamp(d.i64()?);
    let user = get_ident(d)?;
    let role = get_ident(d)?;
    let purpose = get_ident(d)?;
    let suspicion = d.f64()?;
    let mut audits = BTreeSet::new();
    for _ in 0..d.seq_len()? {
        audits.insert(AuditId(d.u64()?));
    }
    let mut covered = BTreeSet::new();
    for _ in 0..d.seq_len()? {
        covered.insert(get_base_column(d)?);
    }
    let touched = d.u64()?;
    let exposed = d.u64()?;
    let off = d.offset();
    let state = state_from_tag(d.u8()?, off)?;
    Ok(TriageItem {
        query,
        ts,
        user,
        role,
        purpose,
        suspicion,
        audits,
        covered,
        touched,
        exposed,
        state,
    })
}

/// Encodes an online-auditor [`AuditBatchState`].
pub fn put_audit_state(e: &mut Enc, s: &AuditBatchState) {
    e.u32(s.touched.len() as u32);
    for fi in &s.touched {
        e.u64(*fi as u64);
    }
    e.u32(s.covered.len() as u32);
    for bc in &s.covered {
        put_base_column(e, bc);
    }
    e.u32(s.exposure.len() as u32);
    for (fi, cols) in &s.exposure {
        e.u64(*fi as u64);
        e.u32(cols.len() as u32);
        for c in cols {
            put_resolved_column(e, c);
        }
    }
    e.u32(s.contributing.len() as u32);
    for id in &s.contributing {
        e.u64(id.0);
    }
}

/// Decodes an online-auditor [`AuditBatchState`].
pub fn get_audit_state(d: &mut Dec<'_>) -> Result<AuditBatchState, DecodeError> {
    let mut touched = BTreeSet::new();
    for _ in 0..d.seq_len()? {
        touched.insert(d.u64()? as usize);
    }
    let mut covered = BTreeSet::new();
    for _ in 0..d.seq_len()? {
        covered.insert(get_base_column(d)?);
    }
    let mut exposure: BTreeMap<usize, BTreeSet<ResolvedColumn>> = BTreeMap::new();
    for _ in 0..d.seq_len()? {
        let fi = d.u64()? as usize;
        let mut cols = BTreeSet::new();
        for _ in 0..d.seq_len()? {
            cols.insert(get_resolved_column(d)?);
        }
        exposure.insert(fi, cols);
    }
    let mut contributing = Vec::new();
    for _ in 0..d.seq_len()? {
        contributing.push(QueryId(d.u64()?));
    }
    Ok(AuditBatchState { touched, covered, exposure, contributing })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(-0.0);
        e.bool(true);
        e.str("héllo\u{1F600}");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo\u{1F600}");
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = Enc::new();
        e.str("hello");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.str().is_err(), "cut at {cut} must fail");
        }
        // A corrupt length prefix larger than the buffer errors cleanly too.
        let mut d = Dec::new(&[0xFF, 0xFF, 0xFF, 0xFF, b'x']);
        assert!(d.str().is_err());
    }

    #[test]
    fn values_round_trip_including_edge_floats() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(1.5e308),
            Value::Str("with \"quotes\" and \\ and \u{0}".into()),
            Value::Ts(Timestamp(-1)),
        ];
        let mut e = Enc::new();
        for v in &vals {
            put_value(&mut e, v);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for v in &vals {
            let got = get_value(&mut d).unwrap();
            match (v, &got) {
                // NaN != NaN; compare bit patterns.
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(format!("{v:?}"), format!("{got:?}")),
            }
        }
        assert!(d.is_exhausted());
    }

    #[test]
    fn schema_and_change_round_trip() {
        let schema = Schema::new(vec![
            (Ident::new("a"), TypeName::Int),
            (Ident { value: "Quoted Col".into(), quoted: true }, TypeName::Text),
            (Ident::new("t"), TypeName::Timestamp),
        ])
        .unwrap();
        let mut e = Enc::new();
        put_schema(&mut e, &schema);
        let rec = ChangeRecord {
            ts: Timestamp(99),
            op: ChangeOp::Update,
            tid: Tid(7),
            after: Some(vec![Value::Int(1), Value::Str("x".into()), Value::Ts(Timestamp(5))]),
        };
        put_change(&mut e, &rec);
        let del =
            ChangeRecord { ts: Timestamp(100), op: ChangeOp::Delete, tid: Tid(7), after: None };
        put_change(&mut e, &del);

        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let schema2 = get_schema(&mut d).unwrap();
        assert_eq!(schema, schema2);
        assert_eq!(get_change(&mut d).unwrap(), rec);
        assert_eq!(get_change(&mut d).unwrap(), del);
        assert!(d.is_exhausted());
    }

    #[test]
    fn triage_types_round_trip() {
        let score = RedactedScore {
            audit: AuditId(3),
            fact_coverage: 0.25,
            column_coverage: 0.5,
            closeness: 0.125,
            touched: 7,
            exposed: 2,
            covered: vec![(Ident::new("t"), Ident::new("a"))],
        };
        let item = TriageItem {
            query: QueryId(9),
            ts: Timestamp(-4),
            user: Ident::new("u"),
            role: Ident { value: "Head Nurse".into(), quoted: true },
            purpose: Ident::new("treatment"),
            suspicion: 0.75,
            audits: [AuditId(1), AuditId(3)].into(),
            covered: [(Ident::new("t"), Ident::new("a"))].into(),
            touched: 7,
            exposed: 2,
            state: ReviewState::Dismissed,
        };
        let mut e = Enc::new();
        put_redacted_score(&mut e, &score);
        put_triage_item(&mut e, &item);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(get_redacted_score(&mut d).unwrap(), score);
        assert_eq!(get_triage_item(&mut d).unwrap(), item);
        assert!(d.is_exhausted());
        // Out-of-range state tags are structured errors, not panics.
        let mut bad = Enc::new();
        bad.u8(9);
        assert!(state_from_tag(Dec::new(&bad.into_bytes()).u8().unwrap(), 0).is_err());
    }

    #[test]
    fn version_store_round_trips() {
        let schema = Schema::new(vec![
            (Ident::new("pid"), TypeName::Text),
            (Ident::new("zip"), TypeName::Text),
        ])
        .unwrap();
        let mut s = VersionStore::new(Ident::new("Patients"), schema, Timestamp(0));
        let recs = [
            ChangeRecord {
                ts: Timestamp(10),
                op: ChangeOp::Insert,
                tid: Tid(1),
                after: Some(vec![Value::Str("p1".into()), Value::Str("120016".into())]),
            },
            ChangeRecord {
                ts: Timestamp(20),
                op: ChangeOp::Update,
                tid: Tid(1),
                after: Some(vec![Value::Str("p1".into()), Value::Str("145568".into())]),
            },
            ChangeRecord { ts: Timestamp(30), op: ChangeOp::Delete, tid: Tid(1), after: None },
        ];
        for rec in recs {
            s.record(rec).unwrap();
        }
        let mut e = Enc::new();
        put_version_store(&mut e, &s);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let decoded = get_version_store(&mut d).unwrap();
        assert!(d.is_exhausted());
        // from_parts re-derives the index and live count, so full equality
        // proves the derived parts came back identical too.
        assert_eq!(decoded, s);
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(get_version_store(&mut d).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn footprint_and_state_round_trip() {
        let fp = QueryFootprint {
            id: QueryId(3),
            bases: [Ident::new("t"), Ident::new("u")].into(),
            covered: [(Ident::new("t"), Ident::new("a"))].into(),
            combos: vec![[(Ident::new("t"), [Tid(1), Tid(2)].into())].into()],
            value_rows: vec![vec![((Ident::new("t"), Ident::new("a")), Value::Int(9))]],
        };
        let st = AuditBatchState {
            touched: [0usize, 3].into(),
            covered: [(Ident::new("t"), Ident::new("a"))].into(),
            exposure: [(1usize, [ResolvedColumn::new("t", "a")].into())].into(),
            contributing: vec![QueryId(3), QueryId(5)],
        };
        let mut e = Enc::new();
        put_footprint(&mut e, &fp);
        put_audit_state(&mut e, &st);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(get_footprint(&mut d).unwrap(), fp);
        assert_eq!(get_audit_state(&mut d).unwrap(), st);
        assert!(d.is_exhausted());
    }
}
