//! The on-disk layout contract for multi-tenant stores.
//!
//! A single-tenant store *is* a data directory: WAL segments and
//! checkpoints live at its root, and that never changes — the default
//! tenant of a fleet keeps journaling to `<data-dir>/` exactly as every
//! pre-tenancy store did, so existing stores need no migration. Named
//! tenants each get an independent store under
//! `<data-dir>/tenants/<name>/`. The WAL scanner matches segment
//! *filenames*, so the `tenants/` subtree is invisible to the root
//! store's recovery and vice versa.
//!
//! Dropping a tenant never deletes audit data: the store directory is
//! renamed to `<name>.dropped-<k>` (the first free `k`), which
//! [`discover`] skips — the journal stays on disk for forensics but the
//! tenant cannot silently resurrect at the next recovery.

use std::io;
use std::path::{Path, PathBuf};

/// The subdirectory of a data dir that holds named tenant stores.
pub const TENANTS_SUBDIR: &str = "tenants";

/// Marker infix of a retired tenant store directory; names containing it
/// are rejected at creation and skipped at discovery.
pub const DROPPED_INFIX: &str = ".dropped-";

/// Validates a tenant name as a safe, portable path component: 1–64
/// characters from `[A-Za-z0-9._-]`, not starting with `.` or `-`, and
/// not claiming the retired-store namespace.
pub fn valid_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("tenant name must not be empty".into());
    }
    if name.len() > 64 {
        return Err(format!("tenant name {name:?} exceeds 64 characters"));
    }
    if name.starts_with('.') || name.starts_with('-') {
        return Err(format!("tenant name {name:?} must not start with '.' or '-'"));
    }
    if let Some(bad) =
        name.chars().find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!(
            "tenant name {name:?} contains {bad:?}; allowed: letters, digits, '.', '_', '-'"
        ));
    }
    if name.contains(DROPPED_INFIX) {
        return Err(format!("tenant name {name:?} collides with the retired-store namespace"));
    }
    Ok(())
}

/// The store directory of a named tenant under `root`.
pub fn tenant_dir(root: &Path, name: &str) -> PathBuf {
    root.join(TENANTS_SUBDIR).join(name)
}

/// Enumerates the named tenant stores under `root`, sorted by name.
/// Retired (`*.dropped-*`) directories, plain files, and directories
/// whose names fail [`valid_name`] are skipped — a foreign directory
/// someone drops into `tenants/` must not take down fleet recovery.
pub fn discover(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let dir = root.join(TENANTS_SUBDIR);
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if valid_name(name).is_err() {
            continue;
        }
        found.push((name.to_string(), entry.path()));
    }
    found.sort();
    Ok(found)
}

/// Retires a tenant's store directory by renaming it to the first free
/// `<name>.dropped-<k>`; returns the new path. A tenant that never wrote
/// anything has no directory — that's success, not an error.
pub fn retire_dir(root: &Path, name: &str) -> io::Result<Option<PathBuf>> {
    let dir = tenant_dir(root, name);
    if !dir.exists() {
        return Ok(None);
    }
    for k in 1u32.. {
        let target = root.join(TENANTS_SUBDIR).join(format!("{name}{DROPPED_INFIX}{k}"));
        if target.exists() {
            continue;
        }
        std::fs::rename(&dir, &target)?;
        return Ok(Some(target));
    }
    unreachable!("u32 retirement ordinals exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_vetted() {
        assert!(valid_name("acme").is_ok());
        assert!(valid_name("Mercy-West.2").is_ok());
        assert!(valid_name("a_b-c.d").is_ok());
        assert!(valid_name("").is_err());
        assert!(valid_name(".hidden").is_err());
        assert!(valid_name("-flag").is_err());
        assert!(valid_name("a/b").is_err());
        assert!(valid_name("a b").is_err());
        assert!(valid_name("x.dropped-1").is_err());
        assert!(valid_name(&"x".repeat(65)).is_err());
    }

    #[test]
    fn discover_skips_retired_and_foreign_entries() {
        let root = std::env::temp_dir().join(format!("audex-tenants-disc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let tdir = root.join(TENANTS_SUBDIR);
        std::fs::create_dir_all(tdir.join("beta")).unwrap();
        std::fs::create_dir_all(tdir.join("alpha")).unwrap();
        std::fs::create_dir_all(tdir.join("gone.dropped-1")).unwrap();
        std::fs::create_dir_all(tdir.join(".hidden")).unwrap();
        std::fs::write(tdir.join("not-a-dir"), b"x").unwrap();
        let found = discover(&root).unwrap();
        let names: Vec<&str> = found.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(found[0].1, tenant_dir(&root, "alpha"));

        // Retiring renames out of discovery; a second drop of a recreated
        // tenant picks the next ordinal instead of clobbering.
        assert!(retire_dir(&root, "alpha").unwrap().is_some());
        std::fs::create_dir_all(tdir.join("alpha")).unwrap();
        let second = retire_dir(&root, "alpha").unwrap().unwrap();
        assert!(second.file_name().unwrap().to_str().unwrap().ends_with(".dropped-2"));
        assert!(retire_dir(&root, "alpha").unwrap().is_none());
        let names: Vec<String> = discover(&root).unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["beta"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_tenants_subdir_is_empty_not_an_error() {
        let root = std::env::temp_dir().join(format!("audex-tenants-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        assert!(discover(&root).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }
}
