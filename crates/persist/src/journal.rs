//! The journal: one handle tying WAL + checkpoints together and plugging
//! into the live service as a change/log sink.
//!
//! The journal keeps the **full logical record stream** (`history`) in
//! memory alongside the on-disk WAL. That is a deliberate trade-off: the
//! audited system itself is entirely in-memory (database, backlog, query
//! log), so the journal's copy adds a constant factor, and it lets a
//! checkpoint be assembled without re-reading and re-decoding segments.
//!
//! Sink callbacks ([`ChangeSink`], [`LogSink`]) fire *after* the in-memory
//! mutation has committed, so they cannot veto it. A journal that hits an
//! I/O error therefore **wedges**: it stops appending, remembers the error,
//! and surfaces it through [`Journal::wedged`] / the service's stats — the
//! in-memory service keeps running, but durability is honestly reported as
//! lost from that point.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use audex_core::{AuditBatchState, BaseColumn, QueryFootprint};
use audex_log::{LogSink, LoggedQuery, QueryId};
use audex_sql::{Ident, Timestamp};
use audex_storage::{ChangeRecord, ChangeSink, IoFaultState, Schema};
use audex_triage::{RedactedScore, TriageItem};

use crate::checkpoint::{self, CheckpointState, DbSnapshot};
use crate::error::{PersistError, Result};
use crate::record::WalRecord;
use crate::wal::{self, TornTail, Wal, WalOptions};

/// What recovery found in a data directory.
#[derive(Debug)]
pub struct Recovered {
    /// The newest loadable checkpoint, if any.
    pub checkpoint: Option<CheckpointState>,
    /// WAL records past the checkpoint's coverage, in sequence order.
    pub tail: Vec<WalRecord>,
    /// The torn tail, if one was found (repaired when opened for writing).
    pub torn: Option<TornTail>,
    /// Human-readable recovery notes (skipped checkpoints, dropped
    /// segments).
    pub notes: Vec<String>,
    /// Sequence number the next append will get.
    pub next_seq: u64,
}

impl Recovered {
    /// Total records contributing to recovered state.
    pub fn total_records(&self) -> u64 {
        self.checkpoint.as_ref().map_or(0, |c| c.covers_seq) + self.tail.len() as u64
    }
}

/// The expensive derived state a checkpoint snapshots alongside the record
/// prefix (gathered by the service from its index and auditor).
#[derive(Debug, Clone)]
pub struct CheckpointDerived {
    /// Touch-index footprints.
    pub footprints: Vec<QueryFootprint>,
    /// Queries the index skipped under governor pressure.
    pub skipped: Vec<QueryId>,
    /// Per-audit batch states, in surviving-registration order.
    pub audit_states: Vec<AuditBatchState>,
    /// Service counters.
    pub counters: [u64; 5],
    /// Review-queue items, in ascending query-id order.
    pub triage: Vec<TriageItem>,
    /// The MVCC database snapshot (`None` for replay-mode services, which
    /// recover their database record by record).
    pub db: Option<DbSnapshot>,
}

/// Journal health/throughput counters, surfaced in `stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalCounters {
    /// Records appended by this process.
    pub records_appended: u64,
    /// fsyncs issued.
    pub fsyncs: u64,
    /// Framing + payload bytes written.
    pub bytes_written: u64,
    /// Checkpoints written by this process.
    pub checkpoints_written: u64,
    /// `covers_seq` of the newest checkpoint (written or recovered).
    pub last_checkpoint_seq: u64,
    /// Records appended since the newest checkpoint ("checkpoint age").
    pub checkpoint_lag: u64,
    /// Live WAL segment count.
    pub segments: u64,
    /// Live WAL bytes across all segments.
    pub segment_bytes: u64,
    /// The wedge error, when durability has been lost.
    pub wedged: Option<String>,
}

/// Registry/tracer handles mirroring the journal's counters. All handles
/// default to no-ops; [`Journal::set_obs`] swaps in live ones. Counter
/// values are published as absolutes (`Counter::store`) after each
/// operation, so the registry always equals [`Journal::counters`] without
/// double-accounting.
#[derive(Debug, Default)]
struct JournalObs {
    tracer: Option<Arc<audex_obs::Tracer>>,
    appends: audex_obs::Counter,
    fsyncs: audex_obs::Counter,
    bytes: audex_obs::Counter,
    checkpoints: audex_obs::Counter,
}

impl JournalObs {
    fn span(&self, name: &str) -> audex_obs::Span {
        match &self.tracer {
            Some(t) => t.span(name),
            None => audex_obs::Span::noop(),
        }
    }
}

#[derive(Debug)]
struct Inner {
    wal: Wal,
    /// The full logical stream: `history[i]` has sequence number `i`.
    history: Vec<WalRecord>,
    checkpoints_written: u64,
    last_checkpoint_seq: u64,
    wedged: Option<String>,
    /// Under `--redact-log` the [`LogSink`] callback is suppressed: the
    /// service journals a [`WalRecord::LogAppendRedacted`] itself after
    /// scoring, so raw SQL never reaches the WAL.
    redacted: bool,
    obs: JournalObs,
}

impl Inner {
    fn publish_obs(&self) {
        let wc = self.wal.counters();
        self.obs.appends.store(wc.records_appended);
        self.obs.fsyncs.store(wc.fsyncs);
        self.obs.bytes.store(wc.bytes_written);
        self.obs.checkpoints.store(self.checkpoints_written);
    }
}

/// A shared, thread-safe handle to the durable store.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl Journal {
    /// Opens (or creates) the durable store in `dir`: loads the newest
    /// loadable checkpoint, scans the WAL, repairs a torn tail, reconciles
    /// the two, and returns the journal plus everything needed to rebuild
    /// service state.
    pub fn open(dir: &Path, options: WalOptions) -> Result<(Arc<Journal>, Recovered)> {
        std::fs::create_dir_all(dir).map_err(PersistError::io_at("create store directory", dir))?;
        let (checkpoint, mut notes) = checkpoint::load_latest(dir)?;
        let covers = checkpoint.as_ref().map_or(0, |c| c.covers_seq);
        if let Some(c) = &checkpoint {
            if c.records.len() as u64 != c.covers_seq {
                return Err(PersistError::Corrupt {
                    site: format!(
                        "checkpoint covers seq {} but stores {} records",
                        c.covers_seq,
                        c.records.len()
                    ),
                });
            }
        }

        // Peek at the WAL before opening for append: if it ends *before*
        // the checkpoint's coverage (a crash under fsync=never can lose
        // synced-into-checkpoint-but-not-into-WAL records), the surviving
        // segments are stale. The checkpoint holds those records, so drop
        // the segments and restart the log at the checkpoint boundary.
        let mut peek = wal::scan_dir(dir, covers)?;
        if peek.next_seq < covers {
            for seg in &peek.segments {
                std::fs::remove_file(&seg.path)
                    .map_err(PersistError::io_at("drop stale segment", &seg.path))?;
            }
            notes.push(format!(
                "WAL ends at seq {} but the checkpoint covers {covers}; dropped {} stale \
                 segment(s) and restarted the log at the checkpoint boundary",
                peek.next_seq,
                peek.segments.len()
            ));
            // The directory changed; rescan (now empty of stale segments).
            peek = wal::scan_dir(dir, covers)?;
        }

        // The appender reuses the peek scan — a second full decode of every
        // segment would double the recovery cost of large stores.
        let (wal, scan) = Wal::open_scanned(dir, options, covers, peek)?;
        if scan.first_seq > covers {
            return Err(PersistError::Corrupt {
                site: format!(
                    "gap between checkpoint (covers seq {covers}) and oldest WAL segment \
                     (starts at seq {})",
                    scan.first_seq
                ),
            });
        }
        if let Some(t) = &scan.torn {
            notes.push(format!(
                "torn tail in {}: dropped {} trailing byte(s) past the last valid record",
                t.path.display(),
                t.dropped_bytes
            ));
        }

        // Records below `covers` duplicate the checkpoint prefix (segments
        // not yet pruned); the tail is everything at or past it.
        let skip = (covers - scan.first_seq) as usize;
        let tail: Vec<WalRecord> = scan.records.into_iter().skip(skip).collect();

        let mut history = checkpoint.as_ref().map_or_else(Vec::new, |c| c.records.clone());
        history.extend(tail.iter().cloned());
        debug_assert_eq!(history.len() as u64, scan.next_seq);

        let recovered =
            Recovered { checkpoint, tail, torn: scan.torn, notes, next_seq: scan.next_seq };
        let journal = Arc::new(Journal {
            dir: dir.to_path_buf(),
            inner: Mutex::new(Inner {
                wal,
                history,
                checkpoints_written: 0,
                last_checkpoint_seq: covers,
                wedged: None,
                redacted: false,
                obs: JournalObs::default(),
            }),
        });
        Ok((journal, recovered))
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms deterministic I/O fault injection on the underlying WAL.
    pub fn set_io_faults(&self, faults: Arc<IoFaultState>) {
        self.lock().wal.set_io_faults(faults);
    }

    /// Mirrors the journal's counters into `registry` (as
    /// `audex_wal_appends_total`, `audex_wal_fsyncs_total`,
    /// `audex_wal_bytes_written_total`, `audex_checkpoints_total`) and
    /// records `wal-append` / `wal-fsync` / `checkpoint` spans on `tracer`.
    pub fn set_obs(&self, registry: &audex_obs::Registry, tracer: Arc<audex_obs::Tracer>) {
        let mut g = self.lock();
        g.obs = JournalObs {
            tracer: Some(tracer),
            appends: registry.counter(
                "audex_wal_appends_total",
                "Records appended to the write-ahead log.",
                &[],
            ),
            fsyncs: registry.counter(
                "audex_wal_fsyncs_total",
                "fsyncs issued by the write-ahead log.",
                &[],
            ),
            bytes: registry.counter(
                "audex_wal_bytes_written_total",
                "Framing plus payload bytes written to the write-ahead log.",
                &[],
            ),
            checkpoints: registry.counter(
                "audex_checkpoints_total",
                "Checkpoints written by this process.",
                &[],
            ),
        };
        g.publish_obs();
    }

    /// Appends one logical record. Infallible by contract (sinks observe
    /// mutations that already happened): on I/O error the journal wedges —
    /// it stops appending and reports the error via [`Journal::wedged`].
    pub fn append(&self, rec: WalRecord) {
        let mut g = self.lock();
        if g.wedged.is_some() {
            return;
        }
        let span = g.obs.span("wal-append");
        match g.wal.append(&rec) {
            Ok(_) => g.history.push(rec),
            Err(e) => {
                span.mark_truncated();
                g.wedged = Some(e.to_string());
            }
        }
        drop(span);
        g.publish_obs();
    }

    /// Journals an audit registration.
    pub fn record_register(&self, name: &str, expr: &str, now: Timestamp) {
        self.append(WalRecord::Register { name: name.to_string(), expr: expr.to_string(), now });
    }

    /// Journals an audit unregistration.
    pub fn record_unregister(&self, name: &str) {
        self.append(WalRecord::Unregister { name: name.to_string() });
    }

    /// Switches raw-SQL suppression on or off. While on, the [`LogSink`]
    /// callback journals nothing — the service must journal the redacted
    /// form via [`Journal::record_log_redacted`] instead.
    pub fn set_redacted(&self, redacted: bool) {
        self.lock().redacted = redacted;
    }

    /// Journals a review-queue acknowledgement.
    pub fn record_review_ack(&self, query: QueryId) {
        self.append(WalRecord::ReviewAck { query });
    }

    /// Journals a review-queue dismissal.
    pub fn record_review_dismiss(&self, query: QueryId) {
        self.append(WalRecord::ReviewDismiss { query });
    }

    /// Journals a template-wide bulk acknowledgement as one record.
    pub fn record_review_ack_bulk(&self, queries: Vec<QueryId>) {
        self.append(WalRecord::ReviewAckBulk { queries });
    }

    /// Journals a triage sensitivity weight.
    pub fn record_weight(&self, table: Ident, column: Option<Ident>, weight: f64) {
        self.append(WalRecord::SetWeight { table, column, weight });
    }

    /// Journals the redacted form of a log append: structural metadata, a
    /// hash of the text, and the redacted scores — never the raw SQL.
    #[allow(clippy::too_many_arguments)]
    pub fn record_log_redacted(
        &self,
        entry: &LoggedQuery,
        sql_hash: u64,
        tables: Vec<Ident>,
        accessed: Vec<BaseColumn>,
        scores: Vec<RedactedScore>,
    ) {
        self.append(WalRecord::LogAppendRedacted {
            ts: entry.executed_at,
            user: entry.context.user.clone(),
            role: entry.context.role.clone(),
            purpose: entry.context.purpose.clone(),
            sql_hash,
            tables,
            accessed,
            scores,
        });
    }

    /// Flushes pending appends to stable storage.
    pub fn sync(&self) -> Result<()> {
        let mut g = self.lock();
        let span = g.obs.span("wal-fsync");
        let result = g.wal.sync();
        if result.is_err() {
            span.mark_truncated();
        }
        drop(span);
        g.publish_obs();
        result
    }

    /// The wedge error, if durability has been lost.
    pub fn wedged(&self) -> Option<String> {
        self.lock().wedged.clone()
    }

    /// Sequence number the next append will get (== logical record count).
    pub fn next_seq(&self) -> u64 {
        self.lock().wal.next_seq()
    }

    /// Records appended since the newest checkpoint.
    pub fn checkpoint_lag(&self) -> u64 {
        let g = self.lock();
        g.wal.next_seq().saturating_sub(g.last_checkpoint_seq)
    }

    /// A consistent snapshot of the health/throughput counters.
    pub fn counters(&self) -> JournalCounters {
        let g = self.lock();
        let wc = g.wal.counters();
        let (segments, segment_bytes) = g.wal.segment_stats();
        JournalCounters {
            records_appended: wc.records_appended,
            fsyncs: wc.fsyncs,
            bytes_written: wc.bytes_written,
            checkpoints_written: g.checkpoints_written,
            last_checkpoint_seq: g.last_checkpoint_seq,
            checkpoint_lag: g.wal.next_seq().saturating_sub(g.last_checkpoint_seq),
            segments,
            segment_bytes,
            wedged: g.wedged.clone(),
        }
    }

    /// Writes a checkpoint covering every record journaled so far, prunes
    /// old checkpoints and fully-covered segments, and returns its path.
    /// `derived` is the service's expensive state over exactly that prefix
    /// (the caller must hold the service quiescent across gather + write,
    /// which the single-threaded request loop gives for free).
    pub fn write_checkpoint(&self, derived: CheckpointDerived) -> Result<PathBuf> {
        let mut g = self.lock();
        if let Some(e) = &g.wedged {
            return Err(PersistError::Io {
                context: "checkpoint refused: journal is wedged".into(),
                source: std::io::Error::other(e.clone()),
            });
        }
        let span = g.obs.span("checkpoint");
        let result = Self::write_checkpoint_locked(&self.dir, &mut g, derived);
        if result.is_err() {
            span.mark_truncated();
        }
        drop(span);
        g.publish_obs();
        result
    }

    fn write_checkpoint_locked(
        dir: &Path,
        g: &mut Inner,
        derived: CheckpointDerived,
    ) -> Result<PathBuf> {
        g.wal.sync()?;
        let state = CheckpointState {
            covers_seq: g.history.len() as u64,
            records: g.history.clone(),
            footprints: derived.footprints,
            skipped: derived.skipped,
            audit_states: derived.audit_states,
            counters: derived.counters,
            triage: derived.triage,
            db: derived.db,
        };
        let path = state.write(dir)?;
        g.checkpoints_written += 1;
        g.last_checkpoint_seq = state.covers_seq;
        checkpoint::prune_old(dir)?;
        g.wal.prune_through(state.covers_seq)?;
        Ok(path)
    }
}

impl ChangeSink for Journal {
    fn on_create_table(&self, name: &Ident, schema: &Schema, ts: Timestamp) {
        self.append(WalRecord::CreateTable { name: name.clone(), schema: schema.clone(), ts });
    }

    fn on_change(&self, table: &Ident, rec: &ChangeRecord) {
        self.append(WalRecord::Change { table: table.clone(), rec: rec.clone() });
    }
}

impl LogSink for Journal {
    fn on_append(&self, entry: &LoggedQuery) {
        if self.lock().redacted {
            return;
        }
        self.append(WalRecord::LogAppend {
            ts: entry.executed_at,
            user: entry.context.user.clone(),
            role: entry.context.role.clone(),
            purpose: entry.context.purpose.clone(),
            sql: entry.text.clone(),
        });
    }
}

/// Reads a data directory **without modifying it**: no torn-tail repair, no
/// segment drops. Used by read-only consumers (`audex audit --data-dir`).
pub fn read_store(dir: &Path) -> Result<Recovered> {
    let (checkpoint, mut notes) = checkpoint::load_latest(dir)?;
    let covers = checkpoint.as_ref().map_or(0, |c| c.covers_seq);
    if let Some(c) = &checkpoint {
        if c.records.len() as u64 != c.covers_seq {
            return Err(PersistError::Corrupt {
                site: format!(
                    "checkpoint covers seq {} but stores {} records",
                    c.covers_seq,
                    c.records.len()
                ),
            });
        }
    }
    let scan = wal::scan_dir(dir, covers)?;
    if scan.next_seq < covers {
        notes.push(format!(
            "WAL ends at seq {} but the checkpoint covers {covers}; reading state from the \
             checkpoint alone",
            scan.next_seq
        ));
        return Ok(Recovered {
            checkpoint,
            tail: Vec::new(),
            torn: scan.torn,
            notes,
            next_seq: covers,
        });
    }
    if scan.first_seq > covers {
        return Err(PersistError::Corrupt {
            site: format!(
                "gap between checkpoint (covers seq {covers}) and oldest WAL segment (starts at \
                 seq {})",
                scan.first_seq
            ),
        });
    }
    if let Some(t) = &scan.torn {
        notes.push(format!(
            "torn tail in {}: ignoring {} trailing byte(s) (read-only; run `audex recover` to \
             repair)",
            t.path.display(),
            t.dropped_bytes
        ));
    }
    let skip = (covers - scan.first_seq) as usize;
    let tail: Vec<WalRecord> = scan.records.into_iter().skip(skip).collect();
    Ok(Recovered { checkpoint, tail, torn: scan.torn, notes, next_seq: scan.next_seq })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::FsyncPolicy;
    use audex_log::{AccessContext, QueryLog};
    use audex_sql::ast::TypeName;
    use audex_storage::Database;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("audex-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts() -> WalOptions {
        WalOptions { fsync: FsyncPolicy::Always, segment_max_bytes: 4 * 1024 * 1024 }
    }

    /// Replays journaled records into a fresh database + log, as the
    /// service's recovery path will.
    fn replay(records: &[WalRecord]) -> (Database, QueryLog) {
        let mut db = Database::new();
        let log = QueryLog::new();
        for rec in records {
            match rec {
                WalRecord::CreateTable { name, schema, ts } => {
                    db.create_table(name.clone(), schema.clone(), *ts).unwrap();
                }
                WalRecord::Change { table, rec } => {
                    db.apply_change(table, rec).unwrap();
                }
                WalRecord::LogAppend { ts, user, role, purpose, sql } => {
                    log.record_text(
                        sql,
                        *ts,
                        AccessContext::new(user.clone(), role.clone(), purpose.clone()),
                    )
                    .unwrap();
                }
                WalRecord::Register { .. }
                | WalRecord::Unregister { .. }
                | WalRecord::ReviewAck { .. }
                | WalRecord::ReviewDismiss { .. }
                | WalRecord::ReviewAckBulk { .. }
                | WalRecord::LogAppendRedacted { .. }
                | WalRecord::SetWeight { .. } => {}
            }
        }
        (db, log)
    }

    fn exec(db: &mut Database, sql: &str, ts: Timestamp) {
        let stmt = audex_sql::parse_statement(sql).unwrap();
        db.execute(&stmt, ts).unwrap();
    }

    /// Drives a database + query log through the journal sinks.
    fn drive(db: &mut Database, log: &QueryLog, journal: &Arc<Journal>) {
        db.set_change_sink(Arc::clone(journal) as Arc<dyn ChangeSink>);
        log.set_sink(Arc::clone(journal) as Arc<dyn LogSink>);
        db.create_table(
            Ident::new("patients"),
            Schema::new(vec![
                (Ident::new("name"), TypeName::Text),
                (Ident::new("disease"), TypeName::Text),
            ])
            .unwrap(),
            Timestamp(1),
        )
        .unwrap();
        exec(db, "INSERT INTO patients VALUES ('alice', 'flu')", Timestamp(2));
        exec(db, "INSERT INTO patients VALUES ('bob', 'cold')", Timestamp(3));
        exec(db, "UPDATE patients SET disease = 'measles' WHERE name = 'bob'", Timestamp(4));
        exec(db, "DELETE FROM patients WHERE name = 'alice'", Timestamp(5));
        log.record_text(
            "SELECT disease FROM patients",
            Timestamp(6),
            AccessContext::new("u", "nurse", "care"),
        )
        .unwrap();
        journal.record_register("a1", "AUDIT disease FROM patients", Timestamp(7));
        journal.record_unregister("a1");
    }

    #[test]
    fn sinks_journal_everything_and_replay_rebuilds_equal_state() {
        let dir = tmp("sinks");
        let (journal, rec0) = Journal::open(&dir, opts()).unwrap();
        assert_eq!(rec0.total_records(), 0);

        let mut db = Database::new();
        let log = QueryLog::new();
        drive(&mut db, &log, &journal);
        assert!(journal.wedged().is_none());
        let appended = journal.counters().records_appended;
        // 1 create + 4 changes + 1 log append + register + unregister.
        assert_eq!(appended, 8);
        drop(journal);

        let (_, recovered) = Journal::open(&dir, opts()).unwrap();
        assert_eq!(recovered.tail.len() as u64, appended);
        let (db2, log2) = replay(&recovered.tail);
        assert_eq!(db, db2, "replayed database must equal the original");
        assert_eq!(log.snapshot(), log2.snapshot());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_prunes_and_recovery_stitches_prefix_plus_tail() {
        let dir = tmp("ckpt");
        let (journal, _) = Journal::open(&dir, opts()).unwrap();
        let mut db = Database::new();
        let log = QueryLog::new();
        drive(&mut db, &log, &journal);

        let derived = CheckpointDerived {
            footprints: vec![],
            skipped: vec![],
            audit_states: vec![],
            counters: [1, 4, 0, 1, 1],
            triage: vec![],
            db: db.mvcc_stores().map(|stores| DbSnapshot {
                last_ts: db.last_ts(),
                stores: stores.into_iter().cloned().collect(),
            }),
        };
        journal.write_checkpoint(derived.clone()).unwrap();
        assert_eq!(journal.checkpoint_lag(), 0);

        // Post-checkpoint activity forms the tail.
        log.record_text(
            "SELECT name FROM patients",
            Timestamp(8),
            AccessContext::new("u2", "admin", "ops"),
        )
        .unwrap();
        assert_eq!(journal.checkpoint_lag(), 1);
        let c = journal.counters();
        assert_eq!(c.checkpoints_written, 1);
        drop(journal);

        let (_, recovered) = Journal::open(&dir, opts()).unwrap();
        let ck = recovered.checkpoint.as_ref().unwrap();
        assert_eq!(ck.counters, [1, 4, 0, 1, 1]);
        assert_eq!(recovered.tail.len(), 1);
        let mut all = ck.records.clone();
        all.extend(recovered.tail.iter().cloned());
        let (db2, log2) = replay(&all);
        assert_eq!(db, db2);
        assert_eq!(log.snapshot(), log2.snapshot());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wedged_journal_stops_appending_and_reports() {
        let dir = tmp("wedge");
        let (journal, _) = Journal::open(&dir, opts()).unwrap();
        journal.set_io_faults(Arc::new(IoFaultState::new(
            audex_storage::IoFaultPlan::new().short_write(2, 3),
        )));
        journal.record_register("a", "AUDIT x FROM t", Timestamp(1));
        assert!(journal.wedged().is_none());
        journal.record_register("b", "AUDIT y FROM t", Timestamp(2)); // short write
        let wedge = journal.wedged().expect("journal wedged after injected short write");
        assert!(wedge.contains("short write"), "{wedge}");
        journal.record_register("c", "AUDIT z FROM t", Timestamp(3)); // dropped
        assert_eq!(journal.counters().records_appended, 1);
        assert!(journal
            .write_checkpoint(CheckpointDerived {
                footprints: vec![],
                skipped: vec![],
                audit_states: vec![],
                counters: [0; 5],
                triage: vec![],
                db: None,
            })
            .is_err());
        drop(journal);

        // Recovery sees the one durable record and repairs the torn frame.
        let (_, recovered) = Journal::open(&dir, opts()).unwrap();
        assert_eq!(recovered.tail.len(), 1);
        assert!(recovered.torn.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn redacted_mode_keeps_raw_sql_out_of_the_wal() {
        let dir = tmp("redact");
        let (journal, _) = Journal::open(&dir, opts()).unwrap();
        journal.set_redacted(true);
        let log = QueryLog::new();
        log.set_sink(Arc::clone(&journal) as Arc<dyn LogSink>);
        let sql = "SELECT disease FROM patients WHERE name = 'alice'";
        log.record_text(sql, Timestamp(1), AccessContext::new("u", "nurse", "care")).unwrap();
        // The sink journaled nothing; the service-side redacted record does.
        assert_eq!(journal.counters().records_appended, 0);
        let entry = log.snapshot().pop().unwrap();
        journal.record_log_redacted(
            &entry,
            audex_triage::fnv1a64(sql.as_bytes()),
            vec![Ident::new("patients")],
            vec![(Ident::new("patients"), Ident::new("disease"))],
            vec![],
        );
        journal.sync().unwrap();
        assert_eq!(journal.counters().records_appended, 1);
        drop(journal);

        // Nothing on disk contains the query text.
        for f in std::fs::read_dir(&dir).unwrap() {
            let bytes = std::fs::read(f.unwrap().path()).unwrap();
            let hay = String::from_utf8_lossy(&bytes);
            assert!(!hay.contains("SELECT"), "raw SQL leaked into the store");
            assert!(!hay.contains("alice"), "literal leaked into the store");
        }
        let (_, recovered) = Journal::open(&dir, opts()).unwrap();
        match &recovered.tail[..] {
            [WalRecord::LogAppendRedacted { sql_hash, tables, .. }] => {
                assert_eq!(*sql_hash, audex_triage::fnv1a64(sql.as_bytes()));
                assert_eq!(tables, &vec![Ident::new("patients")]);
            }
            other => panic!("expected one redacted append, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_store_is_non_destructive() {
        let dir = tmp("readonly");
        let (journal, _) = Journal::open(&dir, opts()).unwrap();
        journal.record_register("a", "AUDIT x FROM t", Timestamp(1));
        journal.sync().unwrap();
        drop(journal);
        // Tear the tail by hand.
        let seg = wal::scan_dir(&dir, 0).unwrap().segments[0].path.clone();
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&seg, &bytes).unwrap();

        let r1 = read_store(&dir).unwrap();
        assert_eq!(r1.tail.len(), 1);
        assert!(r1.torn.is_some());
        assert!(!r1.torn.as_ref().unwrap().repaired);
        // The file is untouched: a second read sees the same torn tail.
        assert_eq!(std::fs::read(&seg).unwrap(), bytes);
        let r2 = read_store(&dir).unwrap();
        assert!(r2.torn.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_between_checkpoint_and_wal_is_corrupt() {
        let dir = tmp("gap");
        let (journal, _) = Journal::open(&dir, opts()).unwrap();
        for i in 0..3 {
            journal.record_register(&format!("a{i}"), "AUDIT x FROM t", Timestamp(i));
        }
        drop(journal);
        // Fabricate a WAL whose oldest segment claims to start past any
        // checkpoint coverage (here: none, covers 0) by renaming it.
        let seg = wal::scan_dir(&dir, 0).unwrap().segments[0].path.clone();
        let renamed = dir.join("wal-00000000000000000007.log");
        std::fs::rename(&seg, &renamed).unwrap();
        let err = Journal::open(&dir, opts()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("gap"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
