//! Structured durability errors.

use std::fmt;
use std::io;
use std::path::Path;

/// Why a durability operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O error, with the operation that hit it.
    Io {
        /// What the journal was doing (e.g. `append to wal-…0000.log`).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// On-disk bytes do not decode — and not in a position the torn-tail
    /// rule may repair (a non-final segment, a checkpoint body, a gap
    /// between checkpoint coverage and the oldest surviving segment).
    Corrupt {
        /// Where the corruption was found.
        site: String,
    },
    /// Recovered records do not replay cleanly (e.g. a journaled register
    /// whose expression no longer parses) — the store and the code
    /// disagree about history.
    Replay {
        /// What failed to replay.
        site: String,
    },
}

impl PersistError {
    /// Builds an [`PersistError::Io`] closure for `map_err`, tagging the
    /// failed operation and path.
    pub(crate) fn io_at(op: &str, path: &Path) -> impl FnOnce(io::Error) -> PersistError {
        let context = format!("{op} {}", path.display());
        move |source| PersistError::Io { context, source }
    }

    /// Builds a [`PersistError::Corrupt`] at a path-qualified site.
    pub(crate) fn corrupt_at(path: &Path, what: impl fmt::Display) -> PersistError {
        PersistError::Corrupt { site: format!("{}: {what}", path.display()) }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context, source } => write!(f, "i/o error: {context}: {source}"),
            PersistError::Corrupt { site } => write!(f, "corrupt store: {site}"),
            PersistError::Replay { site } => write!(f, "recovery replay failed: {site}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PersistError>;
