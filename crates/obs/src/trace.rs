//! Span-based phase tracer with Chrome-trace-event export.
//!
//! A [`Tracer`] records timed spans — pipeline phases, WAL appends and
//! fsyncs, checkpoints, recovery replay — into sharded ring buffers so
//! `par_map` worker threads never contend on a single lock. Each span is
//! an RAII guard: it closes (records its event) when dropped, which is
//! exactly what makes the error path safe — an early `return Err(..)` or
//! a governor trip still unwinds through `Drop`, so no span is left open.
//! Spans interrupted by a governor trip can additionally be flagged with
//! [`Span::mark_truncated`], which surfaces as `"truncated": true` in the
//! exported trace.
//!
//! Export is the Chrome trace-event format (`chrome://tracing`, Perfetto):
//! a JSON object with a `traceEvents` array of `"ph": "X"` complete
//! events carrying microsecond `ts`/`dur`. Nesting is implied by time
//! containment per thread, matching how the viewers stack spans.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Ring-buffer capacity per shard; oldest events are dropped (and counted)
/// once a shard fills, bounding tracer memory on long-running services.
pub const RING_CAPACITY: usize = 4096;

const SHARD_COUNT: usize = 16;

/// One completed span, in microseconds relative to the tracer's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name, e.g. `"batch-suspicion"` or `"wal-fsync"`.
    pub name: String,
    /// Start offset from the tracer epoch, in microseconds.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Small stable per-thread id (1, 2, ...).
    pub tid: u64,
    /// Whether the span was cut short (governor trip, worker failure).
    pub truncated: bool,
}

struct TracerInner {
    epoch: Instant,
    shards: Vec<Mutex<VecDeque<SpanEvent>>>,
    dropped: AtomicU64,
}

impl TracerInner {
    fn push(&self, event: SpanEvent) {
        let shard = (event.tid as usize) % SHARD_COUNT;
        let mut ring = self.shards[shard].lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

/// Collects [`SpanEvent`]s from every thread of the process.
///
/// A disabled tracer ([`Tracer::disabled`]) hands out no-op spans and
/// records nothing; instrumentation sites keep a `Tracer` handle
/// unconditionally and never branch on enablement themselves.
pub struct Tracer {
    inner: Option<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// Creates an enabled tracer. The epoch (time zero for all exported
    /// events) is the moment of creation.
    pub fn new() -> Arc<Tracer> {
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        for _ in 0..SHARD_COUNT {
            shards.push(Mutex::new(VecDeque::new()));
        }
        Arc::new(Tracer {
            inner: Some(TracerInner { epoch: Instant::now(), shards, dropped: AtomicU64::new(0) }),
        })
    }

    /// Creates a disabled tracer: every span is a no-op and nothing is
    /// recorded.
    pub fn disabled() -> Arc<Tracer> {
        Arc::new(Tracer { inner: None })
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name` on the calling thread. The span records
    /// its event when dropped.
    pub fn span(self: &Arc<Self>, name: &str) -> Span {
        if self.inner.is_none() {
            return Span::noop();
        }
        Span {
            state: Some(SpanState {
                tracer: Arc::clone(self),
                name: name.to_string(),
                start: Instant::now(),
                tid: current_tid(),
                truncated: AtomicBool::new(false),
            }),
        }
    }

    /// Number of events discarded because a ring buffer was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Drains and returns all recorded events, sorted by start time then
    /// thread id. Subsequent spans keep recording against the same epoch.
    pub fn take_events(&self) -> Vec<SpanEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for shard in &inner.shards {
            let mut ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend(ring.drain(..));
        }
        events.sort_by(|a, b| (a.start_us, a.tid, &a.name).cmp(&(b.start_us, b.tid, &b.name)));
        events
    }

    /// Drains all events and renders them as Chrome trace-event JSON.
    pub fn export_chrome_json(&self) -> String {
        let events = self.take_events();
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                 \"name\": \"{}\"",
                ev.tid,
                ev.start_us,
                ev.dur_us,
                escape_json(&ev.name)
            ));
            if ev.truncated {
                out.push_str(", \"args\": {\"truncated\": true}");
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

struct SpanState {
    tracer: Arc<Tracer>,
    name: String,
    start: Instant,
    tid: u64,
    truncated: AtomicBool,
}

/// RAII guard for one timed span; records its [`SpanEvent`] on drop.
///
/// Dropping is infallible and happens on every exit path, so spans close
/// even when the enclosing phase errors or a governor trip unwinds the
/// pipeline early.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// A span that records nothing (from a disabled tracer, or for call
    /// sites that are not wired to one).
    pub fn noop() -> Span {
        Span { state: None }
    }

    /// Flags the span as cut short — a governor trip or a failed worker.
    /// The exported event carries `"truncated": true`.
    pub fn mark_truncated(&self) {
        if let Some(state) = &self.state {
            state.truncated.store(true, Ordering::Relaxed);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let Some(inner) = &state.tracer.inner else { return };
        let start_us = state.start.saturating_duration_since(inner.epoch).as_micros() as u64;
        let dur_us = state.start.elapsed().as_micros() as u64;
        inner.push(SpanEvent {
            name: state.name,
            start_us,
            dur_us,
            tid: state.tid,
            truncated: state.truncated.load(Ordering::Relaxed),
        });
    }
}

/// Assigns each OS thread a small stable id (1, 2, ...) so exported
/// traces group spans per worker without leaking opaque `ThreadId`s.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_record_on_drop_and_nest_by_time() {
        let tracer = Tracer::new();
        {
            let _outer = tracer.span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = tracer.span("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let events = tracer.take_events();
        assert_eq!(events.len(), 2);
        // Sorted by start: outer opens first; inner is contained in it.
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].name, "inner");
        assert!(events[0].start_us <= events[1].start_us);
        assert!(
            events[0].start_us + events[0].dur_us >= events[1].start_us + events[1].dur_us,
            "outer must contain inner"
        );
        assert!(!events[0].truncated);
    }

    #[test]
    fn span_closes_on_error_path_and_can_be_truncated() {
        let tracer = Tracer::new();
        let attempt = || -> Result<(), String> {
            let span = tracer.span("doomed");
            span.mark_truncated();
            Err("budget exhausted".into())
        };
        assert!(attempt().is_err());
        let events = tracer.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "doomed");
        assert!(events[0].truncated);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        drop(tracer.span("ignored"));
        assert!(tracer.take_events().is_empty());
        assert_eq!(
            tracer.export_chrome_json(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n"
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_past_capacity() {
        let tracer = Tracer::new();
        for i in 0..(RING_CAPACITY + 10) {
            drop(tracer.span(&format!("s{i}")));
        }
        assert_eq!(tracer.dropped(), 10);
        assert_eq!(tracer.take_events().len(), RING_CAPACITY);
    }

    #[test]
    fn chrome_export_escapes_and_shapes_events() {
        let tracer = Tracer::new();
        drop(tracer.span("with \"quotes\""));
        let json = tracer.export_chrome_json();
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"pid\": 1"), "{json}");
        assert!(json.contains("with \\\"quotes\\\""), "{json}");
    }
}
