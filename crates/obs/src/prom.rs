//! Prometheus text exposition (version 0.0.4) for registry snapshots.
//!
//! Output is deterministic: families sorted by name, series by label set
//! (both guaranteed by [`Registry::snapshot`](crate::Registry::snapshot)),
//! and every family carries `# HELP` / `# TYPE` lines. Histograms render
//! the conventional `_bucket{le=...}` cumulative series plus `_sum` and
//! `_count`.

use std::fmt::Write as _;

use crate::metrics::{FamilySnapshot, MetricKind, SnapshotValue};

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes HELP text: `\` → `\\`, newline → `\n`.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a float the way Prometheus expects (shortest round-trip form;
/// `+Inf` for the infinite bucket bound).
fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// Renders one label set as `{k="v",...}`, with `extra` appended last
/// (used for the histogram `le` label). Empty sets render as nothing.
fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot in the text exposition format.
pub fn render(families: &[FamilySnapshot]) -> String {
    let mut out = String::new();
    for fam in families {
        let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for series in &fam.series {
            match &series.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", fam.name, fmt_labels(&series.labels, None));
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", fam.name, fmt_labels(&series.labels, None));
                }
                SnapshotValue::Histogram { bounds, bucket_counts, count, sum } => {
                    debug_assert_eq!(fam.kind, MetricKind::Histogram);
                    let mut cumulative = 0u64;
                    for (i, c) in bucket_counts.iter().enumerate() {
                        cumulative += c;
                        let le = bounds.get(i).copied().unwrap_or(f64::INFINITY);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            fam.name,
                            fmt_labels(&series.labels, Some(("le", &fmt_f64(le))))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        fam.name,
                        fmt_labels(&series.labels, None),
                        fmt_f64(*sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {count}",
                        fam.name,
                        fmt_labels(&series.labels, None)
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;

    #[test]
    fn renders_help_type_and_sorted_series() {
        let r = Registry::new();
        r.counter("b_total", "second", &[("x", "2")]).add(2);
        r.counter("b_total", "second", &[("x", "1")]).inc();
        r.counter("a_total", "first", &[]).inc();
        let text = r.render_prometheus();
        let a = text.find("a_total 1").expect("a_total rendered");
        let b1 = text.find("b_total{x=\"1\"} 1").expect("b_total x=1 rendered");
        let b2 = text.find("b_total{x=\"2\"} 2").expect("b_total x=2 rendered");
        assert!(a < b1 && b1 < b2, "families and series sorted:\n{text}");
        assert!(text.contains("# HELP a_total first"));
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("obs_series_dropped_total 0"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency", &[0.1, 1.0], &[]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render_prometheus();
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_count 3"), "{text}");
        assert!(text.contains("lat_seconds_sum 5.55"), "{text}");
        assert!(text.contains("# TYPE lat_seconds histogram"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("esc_total", "test", &[("v", "a\\b\"c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains(r#"esc_total{v="a\\b\"c\nd"} 1"#), "{text}");
    }
}
