//! `audex-obs` — telemetry for the audit stack: a lock-sharded metrics
//! registry, a span-based phase tracer, and Prometheus text exposition.
//!
//! The crate is std-only and sits below every other audex crate so that
//! storage, persist, querylog, core, and service can all instrument
//! through one path. Everything is built around cheap disablement:
//! a [`Registry::disabled`] hands out no-op [`Counter`]/[`Gauge`]/
//! [`Histogram`] handles and a [`Tracer::disabled`] hands out no-op
//! [`Span`]s, so instrumented code never branches on whether telemetry
//! is on.
//!
//! * [`metrics`] — counters, gauges, fixed-bucket histograms; sharded
//!   locks for registration, relaxed atomics for updates, a hard
//!   per-family cardinality cap ([`MAX_SERIES_PER_FAMILY`]).
//! * [`trace`] — RAII [`Span`]s in per-thread ring buffers, exported as
//!   Chrome-trace-event JSON (`audex audit --trace-out`).
//! * [`prom`] — deterministic Prometheus text rendering of a registry
//!   snapshot (the `metrics` wire request and broadcast event).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod metrics;
pub mod prom;
pub mod trace;

pub use metrics::{
    Counter, FamilySnapshot, Gauge, Histogram, MetricKind, Registry, SeriesSnapshot, SnapshotValue,
    DURATION_BUCKETS, MAX_SERIES_PER_FAMILY,
};
pub use prom::{escape_help, escape_label_value, render};
pub use trace::{Span, SpanEvent, Tracer, RING_CAPACITY};

use std::time::Instant;

/// A phase guard that both traces and times: it opens a [`Span`] and, on
/// drop, records the elapsed wall-clock into a latency [`Histogram`].
///
/// This is the one-liner the pipeline uses at each phase boundary:
///
/// ```
/// use audex_obs::{Registry, Tracer, TimedSpan, DURATION_BUCKETS};
/// let registry = Registry::new();
/// let tracer = Tracer::new();
/// let hist = registry.latency_histogram(
///     "audex_audit_phase_seconds",
///     "Wall-clock per audit pipeline phase.",
///     &[("phase", "target-view")],
/// );
/// {
///     let _phase = TimedSpan::new(tracer.span("target-view"), hist);
///     // ... do the phase work ...
/// }
/// assert_eq!(registry.snapshot()[0].series.len(), 1);
/// ```
pub struct TimedSpan {
    span: Span,
    histogram: Histogram,
    start: Instant,
}

impl TimedSpan {
    /// Starts timing now; `span` and `histogram` both complete on drop.
    pub fn new(span: Span, histogram: Histogram) -> TimedSpan {
        TimedSpan { span, histogram, start: Instant::now() }
    }

    /// Flags the underlying span as cut short (governor trip, worker
    /// failure). The duration is still recorded in the histogram — a
    /// truncated phase consumed real wall-clock.
    pub fn mark_truncated(&self) {
        self.span.mark_truncated();
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_span_records_histogram_and_trace_event() {
        let registry = Registry::new();
        let tracer = Tracer::new();
        let hist = registry.latency_histogram("phase_seconds", "test", &[("phase", "x")]);
        drop(TimedSpan::new(tracer.span("x"), hist.clone()));
        assert_eq!(hist.count(), 1);
        let events = tracer.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "x");
    }
}
