//! The lock-sharded metrics registry: counters, gauges, and fixed-bucket
//! histograms behind cheap clonable handles.
//!
//! # Design
//!
//! The registry is a name → family map sharded across [`SHARD_COUNT`]
//! mutexes (hashed by family name), so handle *creation* from concurrent
//! `par_map` workers contends only within a shard. Handle *updates* never
//! touch a lock at all: every cell is a plain atomic, and handles are
//! `Arc`s straight to the cell — call sites are expected to create a handle
//! once and hold it, paying one relaxed atomic op per update thereafter.
//!
//! # Cardinality cap
//!
//! Each family holds at most [`MAX_SERIES_PER_FAMILY`] distinct label sets.
//! Past the cap, new label sets are *clamped*: the returned handle routes to
//! the family's shared overflow series (exposed with the single label
//! `overflow="true"`), and the registry-wide
//! [`series_dropped`](Registry::series_dropped) counter (exposed as
//! `obs_series_dropped_total`) counts each clamp. Updates are therefore
//! never lost to a hostile label flood — only their attribution is.
//!
//! # Disabled mode
//!
//! [`Registry::disabled`] hands out no-op handles (`Option::None` inside),
//! making an instrumented call site cost one branch — the baseline the B13
//! overhead bench compares against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Shards of the family map (see the module docs).
const SHARD_COUNT: usize = 8;

/// Hard cap on distinct label sets per family; see the module docs for the
/// clamping discipline past it.
pub const MAX_SERIES_PER_FAMILY: usize = 256;

/// Default latency buckets (seconds) for duration histograms: 10µs to 2.5s
/// in roughly half-decade steps, wide enough for a parse and a full audit.
pub const DURATION_BUCKETS: [f64; 10] =
    [1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 2.5];

/// Micro-units per histogram value unit: sums accumulate atomically in
/// fixed-point micros (1e-6 resolution — ample for latencies in seconds).
const MICROS_PER_UNIT: f64 = 1e6;

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
}

#[derive(Debug)]
struct HistogramCell {
    /// Upper bounds of the finite buckets, strictly increasing; an implicit
    /// `+Inf` bucket follows.
    bounds: Arc<[f64]>,
    /// Per-bucket (non-cumulative) counts; `buckets.len() == bounds.len()+1`.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl HistogramCell {
    fn new(bounds: Arc<[f64]>) -> HistogramCell {
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        HistogramCell { bounds, buckets, count: AtomicU64::new(0), sum_micros: AtomicU64::new(0) }
    }

    fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = (v.max(0.0) * MICROS_PER_UNIT).round() as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }
}

/// A monotonic counter handle. Cloning shares the underlying cell; the
/// default handle is a no-op (used by uninstrumented components).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A handle that ignores updates and reads as zero.
    pub fn noop() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrites the value. Counters are monotonic by convention; `store`
    /// exists for two legitimate non-monotonic moments — restoring
    /// checkpointed counters on recovery, and mirroring an authoritative
    /// external counter (the WAL's own) onto the registry.
    pub fn store(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.value.store(v, Ordering::Relaxed);
        }
    }

    /// The current value (zero for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a settable signed value (cache sizes, lags).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// A handle that ignores updates and reads as zero.
    pub fn noop() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        if let Some(c) = &self.cell {
            c.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        if let Some(c) = &self.cell {
            c.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (zero for a no-op handle).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A handle that ignores updates.
    pub fn noop() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.observe(v);
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        if self.cell.is_some() {
            self.observe(d.as_secs_f64());
        }
    }

    /// Total observations so far (zero for a no-op handle).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| c.sum_micros.load(Ordering::Relaxed) as f64 / MICROS_PER_UNIT)
    }
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Settable signed value.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// Sorted, owned label pairs — the series key within a family.
type LabelSet = Vec<(String, String)>;

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Bucket bounds shared by every histogram series of the family.
    bounds: Option<Arc<[f64]>>,
    series: HashMap<LabelSet, Cell>,
    /// The clamp target once `series` is full (exposed as
    /// `overflow="true"`). Created on first clamp.
    overflow: Option<Cell>,
}

/// One series in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Sorted label pairs (empty for an unlabelled series).
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// A snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state: finite bucket bounds, per-bucket (non-cumulative)
    /// counts with the `+Inf` bucket last, total count, and value sum.
    Histogram {
        /// Finite upper bounds.
        bounds: Vec<f64>,
        /// `bounds.len() + 1` counts, `+Inf` last.
        bucket_counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: f64,
    },
}

/// One family in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Family (metric) name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Series, sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// The lock-sharded metrics registry. See the module docs.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    shards: Vec<Mutex<HashMap<String, Family>>>,
    /// Label sets clamped to an overflow series (see the module docs).
    dropped: AtomicU64,
}

impl Registry {
    /// A live registry.
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry {
            enabled: true,
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            dropped: AtomicU64::new(0),
        })
    }

    /// A registry whose handles are all no-ops — the zero-cost baseline.
    pub fn disabled() -> Arc<Registry> {
        Arc::new(Registry { enabled: false, shards: Vec::new(), dropped: AtomicU64::new(0) })
    }

    /// False when this registry hands out no-op handles.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Label sets clamped into overflow series so far.
    pub fn series_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn shard(&self, name: &str) -> MutexGuard<'_, HashMap<String, Family>> {
        // FNV-1a over the name: stable, no hasher state to thread through.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        // Cells are atomics; a poisoned map still holds only complete
        // entries, so keep going.
        self.shards[(h as usize) % self.shards.len()].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up (or creates) the cell for `name{labels}`, enforcing kind
    /// agreement and the cardinality cap. Returns `None` for a disabled
    /// registry or a kind mismatch (the latter also counts as dropped:
    /// silently merging a counter into a histogram would corrupt both).
    fn cell(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        bounds: Option<&[f64]>,
        labels: &[(&str, &str)],
    ) -> Option<Cell> {
        if !self.enabled {
            return None;
        }
        let mut shard = self.shard(name);
        let family = shard.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            bounds: bounds.map(Arc::from),
            series: HashMap::new(),
            overflow: None,
        });
        if family.kind != kind {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut key: LabelSet =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        key.sort();
        if let Some(cell) = family.series.get(&key) {
            return Some(cell.clone());
        }
        if family.series.len() >= MAX_SERIES_PER_FAMILY {
            // Clamp: route this label set to the shared overflow series.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            let bounds = family.bounds.clone();
            let overflow = family.overflow.get_or_insert_with(|| new_cell(kind, bounds));
            return Some(overflow.clone());
        }
        let cell = new_cell(kind, family.bounds.clone());
        family.series.insert(key, cell.clone());
        Some(cell)
    }

    /// A counter handle for `name{labels}`, creating the series on first
    /// use. `help` is recorded on the family's first registration.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, help, MetricKind::Counter, None, labels) {
            Some(Cell::Counter(c)) => Counter { cell: Some(c) },
            _ => Counter::noop(),
        }
    }

    /// A gauge handle for `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, help, MetricKind::Gauge, None, labels) {
            Some(Cell::Gauge(c)) => Gauge { cell: Some(c) },
            _ => Gauge::noop(),
        }
    }

    /// A histogram handle for `name{labels}` with the given finite bucket
    /// bounds (strictly increasing; `+Inf` is implicit). The first
    /// registration of a family fixes its bounds; later calls share them.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.cell(name, help, MetricKind::Histogram, Some(bounds), labels) {
            Some(Cell::Histogram(c)) => Histogram { cell: Some(c) },
            _ => Histogram::noop(),
        }
    }

    /// A duration histogram with the standard [`DURATION_BUCKETS`].
    pub fn latency_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(name, help, &DURATION_BUCKETS, labels)
    }

    /// A deterministic snapshot of every family: families sorted by name,
    /// series by label set. The registry's own `obs_series_dropped_total`
    /// self-counter is appended so exposition always carries it.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        if !self.enabled {
            return Vec::new();
        }
        let mut out: Vec<FamilySnapshot> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (name, family) in shard.iter() {
                let mut series: Vec<SeriesSnapshot> = family
                    .series
                    .iter()
                    .map(|(labels, cell)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: snapshot_cell(cell),
                    })
                    .collect();
                if let Some(cell) = &family.overflow {
                    series.push(SeriesSnapshot {
                        labels: vec![("overflow".to_string(), "true".to_string())],
                        value: snapshot_cell(cell),
                    });
                }
                series.sort_by(|a, b| a.labels.cmp(&b.labels));
                out.push(FamilySnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series,
                });
            }
        }
        out.push(FamilySnapshot {
            name: "obs_series_dropped_total".to_string(),
            help: "Label sets clamped by the per-family cardinality cap".to_string(),
            kind: MetricKind::Counter,
            series: vec![SeriesSnapshot {
                labels: Vec::new(),
                value: SnapshotValue::Counter(self.series_dropped()),
            }],
        });
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Renders the registry in the Prometheus text exposition format (see
    /// [`crate::prom`]).
    pub fn render_prometheus(&self) -> String {
        crate::prom::render(&self.snapshot())
    }
}

fn new_cell(kind: MetricKind, bounds: Option<Arc<[f64]>>) -> Cell {
    match kind {
        MetricKind::Counter => Cell::Counter(Arc::new(CounterCell::default())),
        MetricKind::Gauge => Cell::Gauge(Arc::new(GaugeCell::default())),
        MetricKind::Histogram => {
            let bounds = bounds.unwrap_or_else(|| Arc::from(&DURATION_BUCKETS[..]));
            Cell::Histogram(Arc::new(HistogramCell::new(bounds)))
        }
    }
}

fn snapshot_cell(cell: &Cell) -> SnapshotValue {
    match cell {
        Cell::Counter(c) => SnapshotValue::Counter(c.value.load(Ordering::Relaxed)),
        Cell::Gauge(c) => SnapshotValue::Gauge(c.value.load(Ordering::Relaxed)),
        Cell::Histogram(c) => SnapshotValue::Histogram {
            bounds: c.bounds.to_vec(),
            bucket_counts: c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum_micros.load(Ordering::Relaxed) as f64 / MICROS_PER_UNIT,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("audex_test_total", "test", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second handle to the same series shares the cell.
        assert_eq!(r.counter("audex_test_total", "test", &[]).get(), 5);
        let g = r.gauge("audex_test_gauge", "test", &[("shard", "a")]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        c.store(42);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_are_cumulative_at_snapshot() {
        let r = Registry::new();
        let h = r.histogram("audex_test_seconds", "test", &[0.1, 1.0], &[]);
        for v in [0.05, 0.5, 0.5, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 6.05).abs() < 1e-9, "{}", h.sum());
        let snap = r.snapshot();
        let fam = snap.iter().find(|f| f.name == "audex_test_seconds").unwrap();
        match &fam.series[0].value {
            SnapshotValue::Histogram { bucket_counts, count, .. } => {
                assert_eq!(bucket_counts, &[1, 2, 1]);
                assert_eq!(*count, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cardinality_cap_clamps_to_overflow() {
        let r = Registry::new();
        for i in 0..MAX_SERIES_PER_FAMILY {
            r.counter("audex_flood_total", "test", &[("id", &i.to_string())]).inc();
        }
        assert_eq!(r.series_dropped(), 0);
        // Past the cap: clamped, counted, but never lost.
        let over_a = r.counter("audex_flood_total", "test", &[("id", "overflow-a")]);
        let over_b = r.counter("audex_flood_total", "test", &[("id", "overflow-b")]);
        over_a.inc();
        over_b.inc();
        assert_eq!(r.series_dropped(), 2);
        assert_eq!(over_a.get(), 2, "both clamped handles share the overflow series");
        let snap = r.snapshot();
        let fam = snap.iter().find(|f| f.name == "audex_flood_total").unwrap();
        assert_eq!(fam.series.len(), MAX_SERIES_PER_FAMILY + 1);
        let overflow = fam
            .series
            .iter()
            .find(|s| s.labels == vec![("overflow".to_string(), "true".to_string())])
            .unwrap();
        assert_eq!(overflow.value, SnapshotValue::Counter(2));
        // Existing series are still reachable at the cap.
        r.counter("audex_flood_total", "test", &[("id", "0")]).inc();
        assert_eq!(r.series_dropped(), 2);
    }

    #[test]
    fn kind_mismatch_returns_noop_not_corruption() {
        let r = Registry::new();
        r.counter("audex_thing_total", "test", &[]).inc();
        let h = r.histogram("audex_thing_total", "test", &DURATION_BUCKETS, &[]);
        h.observe(1.0);
        assert_eq!(h.count(), 0, "mismatched handle is a no-op");
        assert_eq!(r.series_dropped(), 1);
        assert_eq!(r.counter("audex_thing_total", "test", &[]).get(), 1);
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let r = Registry::disabled();
        let c = r.counter("audex_test_total", "test", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(r.snapshot().is_empty());
        assert!(!r.is_enabled());
    }
}
