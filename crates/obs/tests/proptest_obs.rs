//! Property tests for the telemetry crate: Prometheus label escaping
//! round-trips through a minimal exposition parser, registry snapshots are
//! deterministic whatever the number of writer threads, and the
//! per-family cardinality cap holds under arbitrary label workloads
//! without losing counts.

use audex_obs::{Registry, SnapshotValue, MAX_SERIES_PER_FAMILY};
use proptest::prelude::*;
use std::thread;

/// Characters that exercise every escaping path: the three escaped bytes
/// (`\`, `"`, newline), plain ASCII, and multi-byte UTF-8.
const CHARS: [char; 10] = ['a', 'Z', '0', ' ', '"', '\\', '\n', ',', 'é', '\u{2603}'];

fn label_value_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARS.len(), 0..16)
        .prop_map(|ix| ix.into_iter().map(|i| CHARS[i]).collect())
}

/// The minimal exposition parser: given one sample line
/// (`name{k="v",...} value`), returns the label pairs with escapes
/// resolved. This is deliberately independent of the crate's renderer —
/// it implements the Prometheus text-format rules from scratch so the
/// round-trip test cannot share a bug with `escape_label_value`.
fn parse_labels(line: &str) -> Result<Vec<(String, String)>, String> {
    let open = line.find('{').ok_or("no label block")?;
    let mut labels = Vec::new();
    let mut chars = line[open + 1..].chars();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            match c {
                '=' => break,
                '}' if key.is_empty() => return Ok(labels),
                c => key.push(c),
            }
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?}: expected opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next().ok_or("unterminated label value")? {
                '\\' => match chars.next().ok_or("dangling backslash")? {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("unknown escape \\{other}")),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            Some('}') => return Ok(labels),
            other => return Err(format!("expected , or }} after value, got {other:?}")),
        }
    }
}

/// Spreads `updates` across `threads` writer threads (contiguous chunks,
/// like `par_map`) and applies each to the same registry: a counter inc
/// keyed by a small label and a histogram observation.
fn apply_concurrently(registry: &Registry, updates: &[u8], threads: usize) {
    let chunk = updates.len().div_ceil(threads).max(1);
    thread::scope(|scope| {
        for part in updates.chunks(chunk) {
            scope.spawn(move || {
                for &u in part {
                    let worker = format!("{}", u % 3);
                    registry.counter("work_total", "Work items.", &[("worker", &worker)]).inc();
                    // Dyadic values (u/64) keep every partial sum exact in
                    // binary, so the histogram sum is identical whatever
                    // order the threads' additions land in.
                    registry
                        .histogram("work_seconds", "Work latency.", &[0.5, 1.0, 2.0], &[])
                        .observe(f64::from(u) * 0.015625);
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any label value — including `\n`, `"`, `\\` — survives rendering
    /// and re-parsing byte-for-byte.
    #[test]
    fn label_escaping_round_trips(value in label_value_strategy()) {
        let registry = Registry::new();
        registry.counter("esc_total", "Escaping probe.", &[("v", &value)]).inc();
        let text = registry.render_prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("esc_total{"))
            .ok_or("sample line missing")?;
        let labels = parse_labels(line).map_err(|e| format!("{line:?}: {e}"))?;
        prop_assert_eq!(&labels, &vec![("v".to_string(), value)], "line {}", line);
    }

    /// The same multiset of updates produces byte-identical snapshots and
    /// exposition whether applied from 1 thread or from 4 — series order,
    /// sums, and bucket counts cannot depend on interleaving.
    #[test]
    fn snapshot_is_thread_count_deterministic(updates in proptest::collection::vec(any::<u8>(), 1..200)) {
        let sequential = Registry::new();
        apply_concurrently(&sequential, &updates, 1);
        let parallel = Registry::new();
        apply_concurrently(&parallel, &updates, 4);
        prop_assert_eq!(sequential.snapshot(), parallel.snapshot());
        prop_assert_eq!(sequential.render_prometheus(), parallel.render_prometheus());
    }

    /// However many distinct label sets a hostile workload throws at one
    /// family, the registry keeps at most `MAX_SERIES_PER_FAMILY` of them
    /// plus the overflow cell — and no increment is lost: the family's
    /// series sum to exactly the number of incs.
    #[test]
    fn cardinality_cap_holds_and_counts_are_conserved(
        values in proptest::collection::vec(label_value_strategy(), 1..400),
    ) {
        let registry = Registry::new();
        for v in &values {
            registry.counter("cap_total", "Cap probe.", &[("v", v)]).inc();
        }
        let snapshot = registry.snapshot();
        let family = snapshot
            .iter()
            .find(|f| f.name == "cap_total")
            .ok_or("cap_total family missing")?;
        prop_assert!(
            family.series.len() <= MAX_SERIES_PER_FAMILY + 1,
            "{} series escaped the cap",
            family.series.len()
        );
        let total: u64 = family
            .series
            .iter()
            .map(|s| match s.value {
                SnapshotValue::Counter(n) => n,
                ref other => panic!("counter family holds {other:?}"),
            })
            .sum();
        prop_assert_eq!(total, values.len() as u64, "increments lost by the cap");
    }
}
