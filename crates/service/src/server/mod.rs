//! Transports for the `audexd` protocol: stdin/stdout and TCP.
//!
//! Both speak the same line protocol (see [`crate::proto`]): the transport
//! reads a line, parses it, hands the request to the shared
//! [`ServiceCore`] behind a mutex, writes the single response line back to
//! the requester, and fans event lines out to subscribed connections.
//!
//! The TCP front door is built to be **overload-safe**: whatever one
//! client does — stall, spam, send garbage, die mid-frame — every other
//! client's latency is unaffected. The moving parts:
//!
//! * [`accept`] — the acceptor. Per-connection handler threads behind a
//!   hard connection cap ([`FrontDoorConfig::max_conns`]); excess accepts
//!   are *shed* with a structured `{"ok":false,"error":"overloaded"}` line
//!   and closed, never queued. Also owns the graceful drain sequence
//!   (stop accepting → unwedge handlers → flush subscriber queues with a
//!   deadline → fsync the journal).
//! * [`conn`] — one connection's request loop, with robustness budgets: a
//!   byte-capped frame reader (oversized frames are rejected with a
//!   structured error and the input resynchronised at the next newline),
//!   an optional read-idle deadline, and malformed-frame tolerance (skip,
//!   count, keep serving).
//! * [`broadcast`] — the subscriber hub. Events are *sequenced* under the
//!   core lock (so every subscriber sees ingestion order) but *delivered*
//!   outside it: each subscriber owns a bounded queue drained by a
//!   dedicated writer thread, and a subscriber whose queue fills is
//!   evicted. Ingest latency is therefore independent of the slowest
//!   subscriber.
//!
//! Every front-door decision is counted in the core's metrics registry
//! under `audex_service_*` (see [`FrontMetrics`]) and surfaced by the
//! `stats` request.

mod accept;
mod broadcast;
mod conn;

use std::io::{self, BufRead, Write};
use std::time::Duration;

use audex_obs::{Counter, Gauge, Registry};

use crate::fault::NetFaultPlan;
use crate::json::{obj, Json};
use crate::proto::{parse_envelope, Request};
use crate::state::{Outcome, ServiceCore};
use crate::tenant::{Routed, ShardMap, TenantId};

pub use accept::Server;

/// Tuning knobs for the TCP front door, one per `serve` flag.
#[derive(Debug, Clone)]
pub struct FrontDoorConfig {
    /// Hard cap on concurrent connections (`--max-conns`); accepts beyond
    /// it are shed with a structured `overloaded` error, never queued.
    pub max_conns: usize,
    /// Bounded depth of each subscriber's event queue (`--sub-queue`); a
    /// subscriber whose queue fills is evicted.
    pub sub_queue: usize,
    /// Read-idle deadline for non-subscriber connections
    /// (`--conn-idle-ms`); `None` (the default) never times out.
    pub conn_idle: Option<Duration>,
    /// Longest accepted request line in bytes (`--max-line-bytes`);
    /// anything longer is rejected with a structured error and the input
    /// resynchronised at the next newline.
    pub max_line_bytes: usize,
    /// Deadline for the graceful drain to flush subscriber queues and for
    /// straggling handler threads to finish (`--drain-ms`).
    pub drain: Duration,
    /// Per-write timeout on subscriber sockets; a subscriber that blocks a
    /// write this long is treated as stalled and evicted.
    pub write_timeout: Duration,
    /// Deterministic network faults to inject (`--net-fault`, repeatable);
    /// empty in production.
    pub faults: NetFaultPlan,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        FrontDoorConfig {
            max_conns: 1024,
            sub_queue: 256,
            conn_idle: None,
            max_line_bytes: 1 << 20,
            drain: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(1000),
            faults: NetFaultPlan::new(),
        }
    }
}

/// Handles on the front door's metric series. Constructed against the
/// core's registry — [`Registry`] get-or-creates, so the server's handles
/// and the `stats` renderer read the same cells.
pub(crate) struct FrontMetrics {
    /// `audex_service_connections` — currently open connections.
    pub connections: Gauge,
    /// `audex_service_connections_total` — connections accepted and served.
    pub connections_total: Counter,
    /// `audex_service_connections_shed_total` — accepts shed over the cap.
    pub connections_shed: Counter,
    /// `audex_service_subscribers` — currently attached subscribers.
    pub subscribers: Gauge,
    /// `audex_service_subscribers_evicted_total` — subscribers evicted for
    /// falling behind (queue full or write timeout).
    pub subscribers_evicted: Counter,
    /// `audex_service_subscriber_disconnects_total` — subscribers that
    /// went away on their own (EOF / connection reset).
    pub subscriber_disconnects: Counter,
    /// `audex_service_frames_malformed_total` — request lines that failed
    /// to parse (skipped with a structured error, connection kept).
    pub frames_malformed: Counter,
    /// `audex_service_frames_oversized_total` — request lines over the
    /// byte cap (rejected, input resynchronised).
    pub frames_oversized: Counter,
    /// `audex_service_frames_truncated_total` — connections that died
    /// mid-frame (bytes after the last newline).
    pub frames_truncated: Counter,
    /// `audex_service_conn_idle_timeouts_total` — connections closed by
    /// the read-idle deadline.
    pub conn_idle_timeouts: Counter,
}

impl FrontMetrics {
    pub(crate) fn new(registry: &Registry) -> FrontMetrics {
        FrontMetrics {
            connections: registry.gauge(
                "audex_service_connections",
                "Currently open front-door connections.",
                &[],
            ),
            connections_total: registry.counter(
                "audex_service_connections_total",
                "Front-door connections accepted and served.",
                &[],
            ),
            connections_shed: registry.counter(
                "audex_service_connections_shed_total",
                "Accepts shed with an overloaded error because the connection cap was reached.",
                &[],
            ),
            subscribers: registry.gauge(
                "audex_service_subscribers",
                "Currently attached event subscribers.",
                &[],
            ),
            subscribers_evicted: registry.counter(
                "audex_service_subscribers_evicted_total",
                "Subscribers evicted for falling behind (bounded queue full or write timeout).",
                &[],
            ),
            subscriber_disconnects: registry.counter(
                "audex_service_subscriber_disconnects_total",
                "Subscribers that disconnected on their own.",
                &[],
            ),
            frames_malformed: registry.counter(
                "audex_service_frames_malformed_total",
                "Request lines that failed to parse; skipped with a structured error.",
                &[],
            ),
            frames_oversized: registry.counter(
                "audex_service_frames_oversized_total",
                "Request lines rejected for exceeding the byte cap.",
                &[],
            ),
            frames_truncated: registry.counter(
                "audex_service_frames_truncated_total",
                "Connections that ended mid-frame, leaving bytes after the last newline.",
                &[],
            ),
            conn_idle_timeouts: registry.counter(
                "audex_service_conn_idle_timeouts_total",
                "Connections closed by the read-idle deadline.",
                &[],
            ),
        }
    }
}

/// The structured error line every front-door rejection speaks:
/// `{"ok":false,"error":...}`.
pub(crate) fn protocol_error(message: String) -> Json {
    obj([("ok", Json::Bool(false)), ("error", Json::Str(message))])
}

/// Serves one session over stdin/stdout: the `audex serve --stdio` mode,
/// also the harness the end-to-end tests drive as a child process. Wraps
/// the core as a single-tenant fleet — the wire behaviour is unchanged.
/// Returns when stdin closes or a `shutdown` request arrives.
pub fn serve_stdio(core: ServiceCore) -> io::Result<()> {
    serve_fleet_stdio(&ShardMap::single(core))
}

/// Serves a whole tenant fleet over stdin/stdout. One session can
/// subscribe to at most one tenant (the one its `subscribe` addressed);
/// only that shard's events are printed. Single-connection by
/// construction, so the TCP front door's caps and queues don't apply;
/// drain here is simply EOF.
pub fn serve_fleet_stdio(fleet: &ShardMap) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut subscribed_to: Option<TenantId> = None;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut stop = false;
        let (response, events) = match parse_envelope(trimmed) {
            Err(e) => (protocol_error(e), Vec::new()),
            Ok(env) => match fleet.route(env.tenant.as_deref(), env.req) {
                Routed::Reply(response) => (response, Vec::new()),
                Routed::Shutdown(response) => {
                    stop = true;
                    (response, Vec::new())
                }
                Routed::Shard(shard, req) => {
                    let wants_sub = req == Request::Subscribe && subscribed_to.is_none();
                    let mut core = shard.lock();
                    let Outcome { response, events, shutdown } = core.handle(req);
                    drop(core);
                    stop = shutdown;
                    if wants_sub {
                        subscribed_to = Some(shard.id().clone());
                    }
                    let audible = subscribed_to.as_ref() == Some(shard.id());
                    (response, if audible { events } else { Vec::new() })
                }
            },
        };
        writeln!(out, "{response}")?;
        for e in events {
            writeln!(out, "{e}")?;
        }
        out.flush()?;
        if stop {
            break;
        }
    }
    Ok(())
}
