//! One TCP connection's request loop, with per-connection robustness
//! budgets: a byte-capped frame reader, an optional read-idle deadline,
//! and malformed-frame tolerance. Nothing a single client sends — torn
//! bytes, garbage, oversized lines, silence — can wedge the loop or
//! poison the shared core.

use std::io::{self, BufRead, BufReader, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::accept::Shared;
use super::broadcast::{Retire, SubSlot};
use super::protocol_error;
use crate::fault::NetStream;
use crate::proto::{parse_envelope, Request};
use crate::state::Outcome;
use crate::tenant::Routed;

/// One framing step's result.
enum Frame {
    /// A complete newline-terminated line (newline stripped), within the
    /// byte cap. Invalid UTF-8 is replaced, which parses as malformed —
    /// answered, counted, never fatal.
    Line(String),
    /// A line over the byte cap; its bytes were discarded up to and
    /// including the next newline, so the stream is resynchronised.
    Oversized,
    /// The read-idle deadline fired with no frame in progress.
    IdleTimeout,
    /// Peer closed; `truncated` when bytes arrived after the last newline
    /// (the peer died mid-frame).
    Eof { truncated: bool },
    /// A real transport error.
    Err(io::Error),
}

/// Reads one frame without ever buffering more than the cap: the line is
/// accumulated from `fill_buf` windows, and once it exceeds `max` bytes
/// the accumulator is dropped and the remainder discarded to the next
/// newline. A malicious client can therefore hold at most one `BufReader`
/// block plus `max` bytes of this server's memory.
fn read_frame(reader: &mut BufReader<NetStream>, max: usize) -> Frame {
    let mut line: Vec<u8> = Vec::new();
    let mut dropping = false;
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Frame::IdleTimeout;
            }
            Err(e) => return Frame::Err(e),
        };
        if buf.is_empty() {
            return Frame::Eof { truncated: dropping || !line.is_empty() };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let oversized = dropping || line.len() + pos > max;
                if !oversized {
                    line.extend_from_slice(&buf[..pos]);
                }
                reader.consume(pos + 1);
                if oversized {
                    return Frame::Oversized;
                }
                return Frame::Line(String::from_utf8_lossy(&line).into_owned());
            }
            None => {
                let n = buf.len();
                if !dropping {
                    if line.len() + n > max {
                        dropping = true;
                        line = Vec::new();
                    } else {
                        line.extend_from_slice(buf);
                    }
                }
                reader.consume(n);
            }
        }
    }
}

/// Serves one accepted connection to completion. Responses go straight to
/// the socket until the connection subscribes; from then on every line it
/// receives — responses included — is routed through its bounded
/// subscriber queue so exactly one thread writes to the socket and
/// response/event order is preserved.
pub(crate) fn serve_connection(shared: &Arc<Shared>, stream: NetStream) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    if let Some(idle) = shared.cfg.conn_idle {
        stream.set_read_timeout(Some(idle))?;
    }
    let mut reader = BufReader::new(stream);
    let mut slot: Option<Arc<SubSlot>> = None;
    let mut result: io::Result<()> = Ok(());

    let respond =
        |writer: &mut NetStream, slot: &Option<Arc<SubSlot>>, line: crate::json::Json| match slot {
            Some(slot) => {
                shared.hub.send_to(slot, &line);
                Ok(())
            }
            None => writeln!(writer, "{line}").and_then(|()| writer.flush()),
        };

    loop {
        let frame = read_frame(&mut reader, shared.cfg.max_line_bytes);
        let line = match frame {
            Frame::Line(line) => line,
            Frame::Oversized => {
                shared.metrics.frames_oversized.inc();
                respond(
                    &mut writer,
                    &slot,
                    protocol_error(format!(
                        "request line exceeds {} bytes",
                        shared.cfg.max_line_bytes
                    )),
                )?;
                continue;
            }
            Frame::IdleTimeout => {
                shared.metrics.conn_idle_timeouts.inc();
                let _ = respond(&mut writer, &slot, protocol_error("idle timeout".into()));
                break;
            }
            Frame::Eof { truncated } => {
                if truncated {
                    shared.metrics.frames_truncated.inc();
                }
                break;
            }
            Frame::Err(e) => {
                result = Err(e);
                break;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_envelope(trimmed) {
            Err(e) => {
                shared.metrics.frames_malformed.inc();
                respond(&mut writer, &slot, protocol_error(e))?;
            }
            Ok(env) => match shared.fleet.route(env.tenant.as_deref(), env.req) {
                Routed::Reply(response) => {
                    respond(&mut writer, &slot, response)?;
                }
                Routed::Shutdown(response) => {
                    respond(&mut writer, &slot, response)?;
                    shared.request_stop();
                    break;
                }
                Routed::Shard(shard, req) => {
                    let wants_sub = req == Request::Subscribe && slot.is_none();
                    let mut core = shard.lock();
                    // Re-check under the lock: once the drain owns the
                    // shards, no straggler may touch a journal behind its
                    // back.
                    if shared.stop.load(Ordering::SeqCst) {
                        drop(core);
                        let _ = respond(&mut writer, &slot, protocol_error("shutting down".into()));
                        break;
                    }
                    let Outcome { response, events, shutdown } = core.handle(req);
                    if wants_sub {
                        if let Ok(sub_stream) = writer.try_clone() {
                            if let Ok(new_slot) = shared.hub.attach(sub_stream, shard.id().clone())
                            {
                                slot = Some(new_slot);
                            }
                        }
                    }
                    // Under the shard lock: the subscriber's own response
                    // first, then the fan-out, so its queue sees
                    // response → events in ingestion order.
                    if let Some(slot) = &slot {
                        shared.hub.send_to(slot, &response);
                    }
                    shared.hub.publish(shard.id(), &events);
                    drop(core);
                    if slot.is_none() {
                        writeln!(writer, "{response}")?;
                        writer.flush()?;
                    }
                    if shutdown {
                        shared.request_stop();
                        break;
                    }
                }
            },
        }
    }
    if let Some(slot) = &slot {
        // During a drain the hub owns the flush: detaching here would shut
        // the socket down under the writer thread mid-flush. Leave the
        // slot to `SubscriberHub::drain`.
        if !shared.stop.load(Ordering::SeqCst) {
            shared.hub.detach(slot, Retire::Disconnected);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    // `read_frame` needs a NetStream; its framing behaviour is exercised
    // end-to-end by `tests/server_robustness.rs` and the proptest suite in
    // `crates/service/tests/proptest_framing.rs`.
}
