//! The TCP acceptor: per-connection handler threads behind a hard
//! connection cap, and the graceful drain sequence.
//!
//! Overload policy is *shed, don't queue*: an accept beyond
//! [`FrontDoorConfig::max_conns`] is answered with one structured
//! `{"ok":false,"error":"overloaded"}` line and closed immediately, so a
//! flood degrades into fast, explicit rejections instead of an unbounded
//! backlog of half-served sockets.
//!
//! The drain (a `shutdown` request or, via [`Server::run_watching`], a
//! SIGTERM observed by the binary) runs in strict order to guarantee a
//! clean WAL tail on every tenant: stop accepting → freeze the fleet's
//! control plane → unwedge blocked readers by shutting their read halves
//! → wait (bounded) for handler threads to finish → take and hold every
//! shard lock (in name order — the only multi-shard lock hold in the
//! system) → flush subscriber queues with the same deadline → fsync every
//! tenant's journal → exit. The conn loop re-checks the stop flag after
//! acquiring its shard lock, so no straggler can append to a journal
//! once the drain owns it.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use super::broadcast::SubscriberHub;
use super::{conn, protocol_error, FrontDoorConfig, FrontMetrics};
use crate::fault::NetStream;
use crate::state::ServiceCore;
use crate::tenant::ShardMap;

/// State shared by the acceptor, every connection handler, and the
/// subscriber writer threads.
pub(crate) struct Shared {
    pub(crate) fleet: ShardMap,
    pub(crate) hub: SubscriberHub,
    pub(crate) stop: AtomicBool,
    pub(crate) cfg: FrontDoorConfig,
    pub(crate) metrics: FrontMetrics,
    conn_count: AtomicUsize,
    /// Read-half handles of live connections, keyed by accept ordinal, so
    /// the drain can unwedge handlers blocked in a read.
    conns: Mutex<Vec<(u64, NetStream)>>,
}

impl Shared {
    /// Flags the server to drain; the acceptor notices within one poll.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Decrements the connection accounting even if the handler panics, so
/// the cap and the drain's straggler wait stay truthful.
struct ConnGuard {
    shared: Arc<Shared>,
    ordinal: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
        conns.retain(|(id, _)| *id != self.ordinal);
        drop(conns);
        self.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
        self.shared.metrics.connections.add(-1);
    }
}

/// A bound TCP server, not yet accepting. Splitting bind from
/// [`Server::run`] lets callers bind port 0 and learn the real address.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener with default front-door tuning around a
    /// single-tenant core; the service starts on [`Server::run`].
    pub fn bind(core: ServiceCore, addr: &str) -> io::Result<Server> {
        Server::bind_with(core, addr, FrontDoorConfig::default())
    }

    /// Binds the listener with explicit front-door tuning around a
    /// single-tenant core (wrapped as the fleet's default tenant).
    pub fn bind_with(core: ServiceCore, addr: &str, cfg: FrontDoorConfig) -> io::Result<Server> {
        Server::bind_fleet(ShardMap::single(core), addr, cfg)
    }

    /// Binds the listener in front of a tenant fleet. The front-door
    /// metric series live in the fleet registry (the default shard's).
    pub fn bind_fleet(fleet: ShardMap, addr: &str, cfg: FrontDoorConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let metrics = FrontMetrics::new(&fleet.registry());
        let hub = SubscriberHub::new(
            cfg.sub_queue,
            cfg.write_timeout,
            metrics.subscribers.clone(),
            metrics.subscribers_evicted.clone(),
            metrics.subscriber_disconnects.clone(),
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                fleet,
                hub,
                stop: AtomicBool::new(false),
                cfg,
                metrics,
                conn_count: AtomicUsize::new(0),
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a `shutdown` request arrives,
    /// then drains gracefully.
    pub fn run(self) -> io::Result<()> {
        self.run_inner(None)
    }

    /// Like [`Server::run`], additionally draining when `term` becomes
    /// true — the hook the binary's SIGTERM/SIGINT handler sets.
    pub fn run_watching(self, term: &AtomicBool) -> io::Result<()> {
        self.run_inner(Some(term))
    }

    fn run_inner(self, term: Option<&AtomicBool>) -> io::Result<()> {
        // Non-blocking accept so the loop can observe the stop flag a
        // handler thread (or signal) sets; 10ms keeps shutdown prompt
        // without busy-spin.
        self.listener.set_nonblocking(true)?;
        let mut ordinal: u64 = 0;
        loop {
            if term.is_some_and(|t| t.load(Ordering::SeqCst)) {
                self.shared.request_stop();
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    ordinal += 1;
                    if self.shared.conn_count.load(Ordering::SeqCst) >= self.shared.cfg.max_conns {
                        self.shared.metrics.connections_shed.inc();
                        shed(stream);
                        continue;
                    }
                    self.shared.conn_count.fetch_add(1, Ordering::SeqCst);
                    self.shared.metrics.connections.add(1);
                    self.shared.metrics.connections_total.inc();
                    // One response/event line per flush: Nagle would hold
                    // each behind the previous ACK, costing ~40ms per
                    // round trip on loopback.
                    let _ = stream.set_nodelay(true);
                    let stream = NetStream::new(stream, self.shared.cfg.faults.arm(ordinal));
                    if let Ok(handle) = stream.try_clone() {
                        let mut conns =
                            self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
                        conns.push((ordinal, handle));
                    }
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let guard = ConnGuard { shared, ordinal };
                        let _ = conn::serve_connection(&guard.shared, stream);
                        drop(guard);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.drain();
        Ok(())
    }

    /// The graceful drain; see the module docs for the ordering argument.
    fn drain(&self) {
        let deadline = Instant::now() + self.shared.cfg.drain;
        // No shard may be created or dropped once the drain starts: the
        // lock set collected below must be the whole fleet.
        self.shared.fleet.freeze();
        {
            let conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            for (_, stream) in conns.iter() {
                stream.shutdown(Shutdown::Read);
            }
        }
        while self.shared.conn_count.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Hold every shard lock (name order; the frozen fleet cannot grow)
        // across flush + fsync: together with the conn loop's stop
        // re-check this guarantees no append races the final sync, so
        // every tenant's WAL tail is clean on exit.
        let shards = self.shared.fleet.shards();
        let guards: Vec<_> = shards.iter().map(|s| s.lock()).collect();
        self.shared.hub.drain(deadline.max(Instant::now() + Duration::from_millis(50)));
        for core in &guards {
            if let Some(journal) = core.journal() {
                let _ = journal.sync();
            }
        }
        drop(guards);
    }
}

/// Answers an over-cap accept with one structured line and closes it. A
/// short write timeout bounds even this courtesy write.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = writeln!(stream, "{}", protocol_error("overloaded".into()));
    let _ = stream.flush();
}
