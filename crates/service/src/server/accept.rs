//! The TCP acceptor: per-connection handler threads behind a hard
//! connection cap, and the graceful drain sequence.
//!
//! Overload policy is *shed, don't queue*: an accept beyond
//! [`FrontDoorConfig::max_conns`] is answered with one structured
//! `{"ok":false,"error":"overloaded"}` line and closed immediately, so a
//! flood degrades into fast, explicit rejections instead of an unbounded
//! backlog of half-served sockets.
//!
//! The drain (a `shutdown` request or, via [`Server::run_watching`], a
//! SIGTERM observed by the binary) runs in strict order to guarantee a
//! clean WAL tail: stop accepting → unwedge blocked readers by shutting
//! their read halves → wait (bounded) for handler threads to finish →
//! take and hold the core lock → flush subscriber queues with the same
//! deadline → fsync the journal → exit. The conn loop re-checks the stop
//! flag after acquiring the core lock, so no straggler can append to the
//! journal once the drain owns it.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use super::broadcast::SubscriberHub;
use super::{conn, protocol_error, FrontDoorConfig, FrontMetrics};
use crate::fault::NetStream;
use crate::state::ServiceCore;

/// State shared by the acceptor, every connection handler, and the
/// subscriber writer threads.
pub(crate) struct Shared {
    core: Mutex<ServiceCore>,
    pub(crate) hub: SubscriberHub,
    pub(crate) stop: AtomicBool,
    pub(crate) cfg: FrontDoorConfig,
    pub(crate) metrics: FrontMetrics,
    conn_count: AtomicUsize,
    /// Read-half handles of live connections, keyed by accept ordinal, so
    /// the drain can unwedge handlers blocked in a read.
    conns: Mutex<Vec<(u64, NetStream)>>,
}

impl Shared {
    pub(crate) fn lock_core(&self) -> MutexGuard<'_, ServiceCore> {
        // A handler panicking mid-request cannot leave the core with broken
        // invariants worse than a dropped request; keep serving.
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flags the server to drain; the acceptor notices within one poll.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Decrements the connection accounting even if the handler panics, so
/// the cap and the drain's straggler wait stay truthful.
struct ConnGuard {
    shared: Arc<Shared>,
    ordinal: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
        conns.retain(|(id, _)| *id != self.ordinal);
        drop(conns);
        self.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
        self.shared.metrics.connections.add(-1);
    }
}

/// A bound TCP server, not yet accepting. Splitting bind from
/// [`Server::run`] lets callers bind port 0 and learn the real address.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener with default front-door tuning; the service
    /// starts on [`Server::run`].
    pub fn bind(core: ServiceCore, addr: &str) -> io::Result<Server> {
        Server::bind_with(core, addr, FrontDoorConfig::default())
    }

    /// Binds the listener with explicit front-door tuning.
    pub fn bind_with(core: ServiceCore, addr: &str, cfg: FrontDoorConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let metrics = FrontMetrics::new(&core.registry());
        let hub = SubscriberHub::new(
            cfg.sub_queue,
            cfg.write_timeout,
            metrics.subscribers.clone(),
            metrics.subscribers_evicted.clone(),
            metrics.subscriber_disconnects.clone(),
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                core: Mutex::new(core),
                hub,
                stop: AtomicBool::new(false),
                cfg,
                metrics,
                conn_count: AtomicUsize::new(0),
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a `shutdown` request arrives,
    /// then drains gracefully.
    pub fn run(self) -> io::Result<()> {
        self.run_inner(None)
    }

    /// Like [`Server::run`], additionally draining when `term` becomes
    /// true — the hook the binary's SIGTERM/SIGINT handler sets.
    pub fn run_watching(self, term: &AtomicBool) -> io::Result<()> {
        self.run_inner(Some(term))
    }

    fn run_inner(self, term: Option<&AtomicBool>) -> io::Result<()> {
        // Non-blocking accept so the loop can observe the stop flag a
        // handler thread (or signal) sets; 10ms keeps shutdown prompt
        // without busy-spin.
        self.listener.set_nonblocking(true)?;
        let mut ordinal: u64 = 0;
        loop {
            if term.is_some_and(|t| t.load(Ordering::SeqCst)) {
                self.shared.request_stop();
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    ordinal += 1;
                    if self.shared.conn_count.load(Ordering::SeqCst) >= self.shared.cfg.max_conns {
                        self.shared.metrics.connections_shed.inc();
                        shed(stream);
                        continue;
                    }
                    self.shared.conn_count.fetch_add(1, Ordering::SeqCst);
                    self.shared.metrics.connections.add(1);
                    self.shared.metrics.connections_total.inc();
                    // One response/event line per flush: Nagle would hold
                    // each behind the previous ACK, costing ~40ms per
                    // round trip on loopback.
                    let _ = stream.set_nodelay(true);
                    let stream = NetStream::new(stream, self.shared.cfg.faults.arm(ordinal));
                    if let Ok(handle) = stream.try_clone() {
                        let mut conns =
                            self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
                        conns.push((ordinal, handle));
                    }
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let guard = ConnGuard { shared, ordinal };
                        let _ = conn::serve_connection(&guard.shared, stream);
                        drop(guard);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.drain();
        Ok(())
    }

    /// The graceful drain; see the module docs for the ordering argument.
    fn drain(&self) {
        let deadline = Instant::now() + self.shared.cfg.drain;
        {
            let conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            for (_, stream) in conns.iter() {
                stream.shutdown(Shutdown::Read);
            }
        }
        while self.shared.conn_count.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Hold the core lock across flush + fsync: together with the conn
        // loop's stop re-check this guarantees no append races the final
        // sync, so the WAL tail is clean on exit.
        let core = self.shared.lock_core();
        self.shared.hub.drain(deadline.max(Instant::now() + Duration::from_millis(50)));
        if let Some(journal) = core.journal() {
            let _ = journal.sync();
        }
        drop(core);
    }
}

/// Answers an over-cap accept with one structured line and closes it. A
/// short write timeout bounds even this courtesy write.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = writeln!(stream, "{}", protocol_error("overloaded".into()));
    let _ = stream.flush();
}
