//! The subscriber hub: bounded per-subscriber queues drained by dedicated
//! writer threads, so event delivery never happens under the core lock.
//!
//! Events are *sequenced* by publishing under the core lock — every
//! subscriber observes ingestion order — but each line is only
//! `try_send`-ed into the subscriber's bounded queue, which cannot block.
//! A subscriber whose queue is full (it stopped reading, or reads slower
//! than ingest for long enough to fall a full queue behind) is **evicted**:
//! its socket is shut down, its writer thread unwound, and
//! `audex_service_subscribers_evicted_total` incremented. A subscriber
//! that goes away on its own is counted as a disconnect instead. Either
//! way, ingest latency is independent of the slowest client.
//!
//! Lifecycle accounting runs through one compare-and-swap on
//! [`SubSlot::gone`]: whichever side notices first — the publisher on a
//! full queue, the writer thread on a write error, the connection loop on
//! reader EOF, the drain on shutdown — wins the CAS and does the counting
//! exactly once; everyone else stands down.

use std::io::Write;
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use audex_obs::{Counter, Gauge};

use crate::fault::NetStream;
use crate::json::Json;
use crate::tenant::TenantId;

/// What a subscriber's writer thread receives: an event/response line to
/// deliver, or the drain sentinel asking it to flush and exit.
enum Msg {
    Line(Arc<str>),
    Close,
}

/// Why a slot left service; decides which counter the CAS winner bumps.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Retire {
    /// Fell behind: queue full or write timed out. Counted as an eviction.
    Evicted,
    /// Went away on its own (EOF, reset). Counted as a disconnect.
    Disconnected,
    /// Flushed and closed by the graceful drain. Not an error; no counter.
    Drained,
}

/// Metric handles shared by the hub and every writer thread.
#[derive(Clone)]
struct HubCounters {
    subscribers: Gauge,
    evicted: Counter,
    disconnects: Counter,
}

/// One attached subscriber: the bounded queue's sender, a handle on the
/// socket (for shutdown), and the exactly-once lifecycle flags.
pub(crate) struct SubSlot {
    tx: SyncSender<Msg>,
    stream: NetStream,
    /// The tenant this subscriber listens to; publishes from other
    /// tenants' shards never reach it (cross-tenant isolation).
    tenant: TenantId,
    /// CAS target: first mover retires the slot and does the accounting.
    gone: AtomicBool,
    /// Set by the writer thread on exit; the drain polls it.
    done: AtomicBool,
}

impl SubSlot {
    /// True once the slot has been retired (evicted, disconnected or
    /// drained); enqueues to it are pointless.
    pub(crate) fn is_gone(&self) -> bool {
        self.gone.load(Ordering::SeqCst)
    }

    /// Retires the slot: the CAS winner counts the reason, drops the
    /// subscriber gauge, and shuts the socket down (which also unwedges a
    /// writer thread blocked mid-write and the connection's reader loop).
    /// Returns whether this call won the race.
    fn retire(&self, counters: &HubCounters, reason: Retire) -> bool {
        if self.gone.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_err() {
            return false;
        }
        match reason {
            Retire::Evicted => counters.evicted.inc(),
            Retire::Disconnected => counters.disconnects.inc(),
            Retire::Drained => {}
        }
        counters.subscribers.add(-1);
        self.stream.shutdown(Shutdown::Both);
        true
    }
}

/// The set of live subscribers and the policy knobs their queues run
/// under. Publishing requires the caller to hold the core lock (that is
/// what sequences events); the hub's own mutex only guards the slot list.
pub(crate) struct SubscriberHub {
    subs: Mutex<Vec<Arc<SubSlot>>>,
    queue_depth: usize,
    write_timeout: Duration,
    counters: HubCounters,
}

impl SubscriberHub {
    pub(crate) fn new(
        queue_depth: usize,
        write_timeout: Duration,
        subscribers: Gauge,
        evicted: Counter,
        disconnects: Counter,
    ) -> SubscriberHub {
        SubscriberHub {
            subs: Mutex::new(Vec::new()),
            queue_depth: queue_depth.max(1),
            write_timeout,
            counters: HubCounters { subscribers, evicted, disconnects },
        }
    }

    fn lock_subs(&self) -> std::sync::MutexGuard<'_, Vec<Arc<SubSlot>>> {
        self.subs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attaches a subscriber to one tenant's event stream: bounds its
    /// queue, spawns its writer thread, and returns the slot the owning
    /// connection routes lines through. Call under that tenant's shard
    /// lock so the subscription is ordered against concurrent publishes.
    pub(crate) fn attach(
        &self,
        stream: NetStream,
        tenant: TenantId,
    ) -> std::io::Result<Arc<SubSlot>> {
        let writer = stream.try_clone()?;
        writer.set_write_timeout(Some(self.write_timeout))?;
        let (tx, rx) = std::sync::mpsc::sync_channel(self.queue_depth);
        let slot = Arc::new(SubSlot {
            tx,
            stream,
            tenant,
            gone: AtomicBool::new(false),
            done: AtomicBool::new(false),
        });
        self.counters.subscribers.add(1);
        let thread_slot = Arc::clone(&slot);
        let thread_counters = self.counters.clone();
        std::thread::spawn(move || writer_loop(thread_slot, rx, writer, thread_counters));
        self.lock_subs().push(Arc::clone(&slot));
        Ok(slot)
    }

    /// Enqueues one line for a single subscriber (its own response).
    /// Never blocks: a full queue evicts the subscriber instead. Call
    /// under the core lock. Returns false when the slot is gone.
    pub(crate) fn send_to(&self, slot: &Arc<SubSlot>, line: &Json) -> bool {
        if slot.is_gone() {
            return false;
        }
        self.offer(slot, Arc::from(line.to_string().as_str()))
    }

    /// Fans events out to every live subscriber **of the publishing
    /// tenant** — slots attached to other tenants never see them. Each
    /// line is rendered once and `try_send`-ed; full queues evict. Call
    /// under the publishing shard's lock — that lock, not the hub, is
    /// what sequences one tenant's events.
    pub(crate) fn publish(&self, tenant: &TenantId, events: &[Json]) {
        if events.is_empty() {
            return;
        }
        let mut subs = self.lock_subs();
        subs.retain(|s| !s.is_gone());
        if subs.iter().all(|s| s.tenant != *tenant) {
            return;
        }
        for event in events {
            let line: Arc<str> = Arc::from(event.to_string().as_str());
            for slot in subs.iter().filter(|s| s.tenant == *tenant) {
                self.offer(slot, Arc::clone(&line));
            }
        }
    }

    /// `try_send` one line; a full queue or a hung-up writer retires the
    /// slot. Returns whether the line was enqueued.
    fn offer(&self, slot: &Arc<SubSlot>, line: Arc<str>) -> bool {
        match slot.tx.try_send(Msg::Line(line)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                slot.retire(&self.counters, Retire::Evicted);
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                slot.retire(&self.counters, Retire::Disconnected);
                false
            }
        }
    }

    /// The owning connection's reader saw EOF or died: the subscriber is
    /// gone. Counts a disconnect (unless already retired) and asks the
    /// writer thread to exit.
    pub(crate) fn detach(&self, slot: &Arc<SubSlot>, reason: Retire) {
        slot.retire(&self.counters, reason);
        // Wake a writer idling in recv(); if the queue is full the socket
        // shutdown above already unwedged it.
        let _ = slot.tx.try_send(Msg::Close);
        self.lock_subs().retain(|s| !Arc::ptr_eq(s, slot));
    }

    /// Graceful drain: sends every live subscriber the flush-then-exit
    /// sentinel and waits (bounded by `deadline`) for the writer threads
    /// to finish delivering their queues. A subscriber that cannot take
    /// even the sentinel, or cannot flush in time, is evicted — the drain
    /// never waits on a stalled client.
    pub(crate) fn drain(&self, deadline: Instant) {
        let slots: Vec<Arc<SubSlot>> = {
            let mut subs = self.lock_subs();
            std::mem::take(&mut *subs)
        };
        for slot in &slots {
            if slot.is_gone() {
                continue;
            }
            if slot.tx.try_send(Msg::Close).is_err() {
                // Queue full at drain time: this subscriber was already a
                // full queue behind — evict rather than wait.
                slot.retire(&self.counters, Retire::Evicted);
            }
        }
        loop {
            let pending = slots.iter().any(|s| !s.done.load(Ordering::SeqCst));
            if !pending {
                return;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Out of time: cut the stragglers loose so their writers error out.
        for slot in &slots {
            if !slot.done.load(Ordering::SeqCst) {
                slot.retire(&self.counters, Retire::Evicted);
            }
        }
    }
}

/// One subscriber's dedicated writer: drains the bounded queue onto the
/// socket. A write error or timeout retires the slot (timeout ⇒ evicted,
/// hangup ⇒ disconnected); the `Close` sentinel means flush done, exit
/// clean.
fn writer_loop(
    slot: Arc<SubSlot>,
    rx: Receiver<Msg>,
    mut stream: NetStream,
    counters: HubCounters,
) {
    while let Ok(msg) = rx.recv() {
        let line = match msg {
            Msg::Line(line) => line,
            Msg::Close => {
                slot.retire(&counters, Retire::Drained);
                break;
            }
        };
        let wrote = stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush());
        if let Err(e) = wrote {
            let reason = match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Retire::Evicted,
                _ => Retire::Disconnected,
            };
            slot.retire(&counters, reason);
            break;
        }
    }
    // Sender gone without a sentinel counts as a disconnect too.
    slot.retire(&counters, Retire::Disconnected);
    slot.done.store(true, Ordering::SeqCst);
}
