//! Transports for the `audexd` protocol: stdin/stdout and TCP.
//!
//! Both speak the same line protocol (see [`crate::proto`]): the transport
//! reads a line, parses it, hands the request to the shared
//! [`ServiceCore`] behind a mutex, writes the single response line back to
//! the requester, and fans event lines out to subscribed connections.
//! Events are broadcast while the core lock is held, so every subscriber
//! sees them in ingestion order.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::json::{obj, Json};
use crate::proto::{parse_request, Request};
use crate::state::{Outcome, ServiceCore};

fn protocol_error(message: String) -> Json {
    obj([("ok", Json::Bool(false)), ("error", Json::Str(message))])
}

/// Serves one session over stdin/stdout: the `audex serve --stdio` mode,
/// also the harness the end-to-end tests drive as a child process. Returns
/// when stdin closes or a `shutdown` request arrives.
pub fn serve_stdio(mut core: ServiceCore) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut subscribed = false;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (response, events, stop) = match parse_request(trimmed) {
            Err(e) => (protocol_error(e), Vec::new(), false),
            Ok(req) => {
                let is_sub = req == Request::Subscribe;
                let Outcome { response, events, shutdown } = core.handle(req);
                subscribed |= is_sub;
                (response, events, shutdown)
            }
        };
        writeln!(out, "{response}")?;
        if subscribed {
            for e in events {
                writeln!(out, "{e}")?;
            }
        }
        out.flush()?;
        if stop {
            break;
        }
    }
    Ok(())
}

struct Shared {
    core: Mutex<ServiceCore>,
    subscribers: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
}

impl Shared {
    fn lock_core(&self) -> std::sync::MutexGuard<'_, ServiceCore> {
        // A handler panicking mid-request cannot leave the core with broken
        // invariants worse than a dropped request; keep serving.
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn broadcast(&self, events: &[Json]) {
        let mut subs = self.subscribers.lock().unwrap_or_else(PoisonError::into_inner);
        subs.retain_mut(|s| {
            for e in events {
                if writeln!(s, "{e}").is_err() {
                    return false; // disconnected subscriber
                }
            }
            s.flush().is_ok()
        });
    }
}

/// A bound TCP server, not yet accepting. Splitting bind from
/// [`Server::run`] lets callers bind port 0 and learn the real address.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener; the service starts on [`Server::run`].
    pub fn bind(core: ServiceCore, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                core: Mutex::new(core),
                subscribers: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a `shutdown` request arrives.
    pub fn run(self) -> io::Result<()> {
        // Non-blocking accept so the loop can observe the stop flag a
        // handler thread sets; 25ms keeps shutdown prompt without busy-spin.
        self.listener.set_nonblocking(true)?;
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &shared);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_request(trimmed) {
            Err(e) => {
                writeln!(writer, "{}", protocol_error(e))?;
                writer.flush()?;
            }
            Ok(req) => {
                let is_sub = req == Request::Subscribe;
                // Hold the core lock across response *and* broadcast so
                // subscribers observe events in the same order requests
                // were admitted.
                let mut core = shared.lock_core();
                let Outcome { response, events, shutdown } = core.handle(req);
                if is_sub {
                    if let Ok(clone) = writer.try_clone() {
                        shared
                            .subscribers
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(clone);
                    }
                }
                writeln!(writer, "{response}")?;
                writer.flush()?;
                shared.broadcast(&events);
                drop(core);
                if shutdown {
                    shared.stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}
