//! `audex-service` — `audexd`, the streaming audit service.
//!
//! The paper's framework audits a *finished* log; its §4 future work asks
//! for the online version. This crate is that daemon: a long-running
//! service that ingests timestamped DML and annotated queries as a stream,
//! scores every query on arrival against standing audit expressions
//! ([`audex_core::OnlineAuditor`]), folds its footprint into an
//! incrementally maintained [`audex_core::TouchIndex`]
//! ([`TouchIndex::extend`](audex_core::TouchIndex::extend) — equivalent to
//! a from-scratch build, proven by differential proptest), and answers
//! full `audit` requests straight from the index without re-running the
//! log.
//!
//! * [`proto`] — the line-delimited JSON protocol (one object per line;
//!   hand-rolled [`json`] — the workspace stays serde-free),
//! * [`state`] — the transport-agnostic state machine, with the resource
//!   governor as admission control: each request runs under the configured
//!   [`audex_core::ResourceLimits`], and a tripped budget rejects the
//!   request whole with `"busy":true` backpressure instead of degrading
//!   the index,
//! * [`tenant`] — multi-tenant sharding: a [`tenant::ShardMap`] of
//!   org-scoped cores, each with its own database, log, audits, governor
//!   and journal (`<data-dir>/tenants/<name>/`), so independent tenants
//!   ingest, audit and checkpoint in parallel with **no shared lock on
//!   the hot path**. Requests address a tenant with a `"tenant"` field
//!   (absent ⇒ the default tenant — full wire compatibility);
//!   `create-tenant` / `drop-tenant` / `list-tenants` manage the fleet,
//!   and `stats`/`metrics`/`audit` accept `"all_tenants":true` for
//!   snapshot-then-aggregate fan-outs that never block on a stuck shard,
//! * [`server`] — stdin/stdout and TCP front ends (`audex serve`). The
//!   TCP front door is overload-safe: per-connection handler threads
//!   behind a hard cap (excess accepts shed with a structured error),
//!   bounded per-subscriber broadcast queues with slow-subscriber
//!   eviction, per-connection read/frame budgets, and a graceful drain
//!   that flushes subscribers and fsyncs the journal,
//! * [`fault`] — deterministic network fault injection
//!   ([`fault::NetFaultPlan`], the network sibling of
//!   `audex_storage::fault`) for proving those properties under torn
//!   frames, mid-request disconnects, stalled readers and slow writers.
//!
//! Telemetry rides on [`audex_obs`]: every [`state::ServiceCore`] owns a
//! metrics registry (counters, per-phase and per-request latency
//! histograms) answered over the wire by the `metrics` request as
//! Prometheus text, broadcast periodically to subscribers with
//! [`state::ServiceConfig::metrics_every`], and traced span-by-span when a
//! [`audex_obs::Tracer`] is attached via
//! [`state::ServiceCore::set_tracer`].
//!
//! The versioned backlog, snapshot cache and governor all come from the
//! batch system unchanged; the service is a thin stateful shell that keeps
//! them hot across requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod fault;
pub mod json;
pub mod proto;
pub mod render;
pub mod server;
pub mod state;
pub mod tenant;

pub use fault::NetFaultPlan;
pub use json::Json;
pub use proto::{parse_envelope, parse_request, Envelope, Request};
pub use render::render_queue_table;
pub use server::{serve_fleet_stdio, serve_stdio, FrontDoorConfig, Server};
pub use state::{journal_stats_fields, Outcome, ServiceConfig, ServiceCore, ServiceCounters};
pub use tenant::{
    render_tenant_table, FleetConfig, FleetRecovery, Routed, Shard, ShardMap, TenantId,
    TenantRecovery, DEFAULT_TENANT,
};
