//! The service engine room: one mutable state machine, transport-agnostic.
//!
//! [`ServiceCore`] owns the versioned [`Database`], the append-only
//! [`QueryLog`], the incrementally maintained [`TouchIndex`] and the
//! [`OnlineAuditor`] with its running per-audit batch state. Each protocol
//! request maps to one `handle` call; the transports in
//! [`crate::server`] serialize calls behind a mutex, so handlers can
//! assume exclusive access.
//!
//! # Invariant: the index mirrors the log
//!
//! Every entry appended to the log is first folded into the touch index
//! (footprint executed once, at the entry's own execution instant — the
//! paper's backlog methodology makes later DML irrelevant to earlier
//! footprints, so the fold never needs revisiting). Admission control runs
//! *before* mutation: if the request's governor trips while computing the
//! footprint, the entry is rejected whole — no log append, no index
//! growth, `"busy":true` in the response — so a rejected request leaves no
//! trace and the client can simply retry.
//!
//! # Pinned audits
//!
//! A registered expression is prepared once, against the backlog as of
//! registration, and stays pinned to that target view — like a prepared
//! statement. `audit` answers for the pinned view straight from the index;
//! re-register to pick up later DML.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

use audex_core::{
    AuditEngine, AuditError, AuditId, AuditPhase, DispatchMode, EngineObs, EngineOptions, Governor,
    OnlineAuditor, ResourceLimits, TouchIndex,
};
use audex_log::{AccessContext, LoggedQuery, QueryId, QueryLog};
use audex_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use audex_persist::{CheckpointDerived, DbSnapshot, Journal, PersistError, Recovered, WalRecord};
use audex_sql::{Ident, Timestamp};
use audex_storage::{ChangeSink, Database, JoinStrategy, StorageMode};
use audex_triage::{fnv1a64, RedactedScore, ReviewQueue, ReviewState};

use crate::json::{obj, Json};
use crate::proto::Request;

/// Tuning for a running service.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Per-request governor limits (admission control). Unlimited by
    /// default.
    pub limits: ResourceLimits,
    /// Join strategy for footprints and scoring.
    pub strategy: JoinStrategy,
    /// Worker threads for batch work (preloading an existing log).
    pub parallelism: usize,
    /// With a journal attached: write a checkpoint once this many records
    /// accumulate past the newest one. `None` disables auto-checkpointing
    /// (explicit `compact` still works).
    pub checkpoint_every: Option<u64>,
    /// Broadcast a `metrics` event to subscribers once every N ingested
    /// queries. `None` disables periodic metrics events (the `metrics`
    /// request still answers on demand).
    pub metrics_every: Option<u64>,
    /// Score every standing audit on every logged query instead of probing
    /// the dispatch index — the differential oracle (`--scan-all-audits`).
    pub scan_all_audits: bool,
    /// Keep raw SQL out of durable storage (`--redact-log`): the journal's
    /// log sink is suppressed and each accepted append is journaled as
    /// structural metadata plus a hash instead.
    pub redact_log: bool,
    /// Auditor review budget: the default page size of the `queue` command
    /// (`--review-budget`). `None` falls back to 10.
    pub review_budget: Option<u64>,
    /// Version-history representation: MVCC tuple store by default, backlog
    /// replay as the differential oracle (`--storage replay`).
    pub storage: StorageMode,
}

/// Monotonic counters surfaced by the `stats` command. A point-in-time
/// read of the registry-backed counters ([`ServiceCore::counters`]); the
/// registry itself ([`ServiceCore::registry`]) is the live telemetry path.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceCounters {
    /// Log entries accepted, scored and indexed.
    pub queries_ingested: u64,
    /// Requests refused (parse errors, order violations, governor trips).
    pub queries_rejected: u64,
    /// DML statements applied to the backlog.
    pub dml_statements: u64,
    /// Requests that hit a governor limit (deadline/step budget).
    pub governor_trips: u64,
    /// Score/verdict events produced for subscribers. Periodic `metrics`
    /// events are *not* counted: recovery replay does not re-emit them, and
    /// the counter must rebuild byte-identically from the journal.
    pub events_emitted: u64,
}

/// The service's registry-backed counter/histogram handles — the single
/// telemetry path behind both `stats` and the Prometheus `metrics`
/// exposition. Handles are created once at construction; updates are
/// lock-free atomics.
struct CoreMetrics {
    ingested: Counter,
    rejected: Counter,
    dml: Counter,
    governor_rejections: Counter,
    events: Counter,
    ingest_seconds: Histogram,
    triage_open: Gauge,
    triage_acked: Gauge,
    triage_dismissed: Gauge,
}

impl CoreMetrics {
    fn new(registry: &Registry) -> CoreMetrics {
        CoreMetrics {
            ingested: registry.counter(
                "audex_queries_ingested_total",
                "Log entries accepted, scored and indexed.",
                &[],
            ),
            rejected: registry.counter(
                "audex_queries_rejected_total",
                "Requests refused (parse errors, order violations, governor trips).",
                &[],
            ),
            dml: registry.counter(
                "audex_dml_statements_total",
                "DML statements applied to the backlog.",
                &[],
            ),
            governor_rejections: registry.counter(
                "audex_governor_rejections_total",
                "Requests rejected by a governor limit (backpressure).",
                &[],
            ),
            events: registry.counter(
                "audex_events_emitted_total",
                "Score/verdict events produced for subscribers.",
                &[],
            ),
            ingest_seconds: registry.latency_histogram(
                "audex_ingest_seconds",
                "Wall-clock to admit, score, and index one log append.",
                &[],
            ),
            triage_open: registry.gauge(
                "audex_triage_open",
                "Flagged queries awaiting review.",
                &[],
            ),
            triage_acked: registry.gauge(
                "audex_triage_acked",
                "Flagged queries acknowledged by a reviewer.",
                &[],
            ),
            triage_dismissed: registry.gauge(
                "audex_triage_dismissed",
                "Flagged queries dismissed as benign.",
                &[],
            ),
        }
    }

    fn publish_triage(&self, queue: &ReviewQueue) {
        let c = queue.counts();
        self.triage_open.set(c.open as i64);
        self.triage_acked.set(c.acked as i64);
        self.triage_dismissed.set(c.dismissed as i64);
    }
}

/// What one request produced.
pub struct Outcome {
    /// The single response line.
    pub response: Json,
    /// Zero or more event lines for subscribers.
    pub events: Vec<Json>,
    /// True when the request asked the service to stop.
    pub shutdown: bool,
}

impl Outcome {
    fn reply(response: Json) -> Outcome {
        Outcome { response, events: Vec::new(), shutdown: false }
    }
}

/// A standing audit, addressed in the online auditor by its stable
/// [`AuditId`] (ids survive unregistration — no index-shift hazard). The
/// expression text and preparation instant are not kept here: the journal's
/// Register records carry them, and recovery re-prepares from those.
#[derive(Debug, Clone)]
struct RegisteredAudit {
    name: String,
    id: AuditId,
}

/// The streaming audit service state machine.
pub struct ServiceCore {
    db: Database,
    log: QueryLog,
    index: TouchIndex,
    online: OnlineAuditor,
    registered: Vec<RegisteredAudit>,
    /// The ranked review queue over flagged queries.
    triage: ReviewQueue,
    config: ServiceConfig,
    journal: Option<Arc<Journal>>,
    /// Per-instance metrics registry (not process-global, so concurrent
    /// services — and tests — never share counters).
    registry: Arc<Registry>,
    /// Where the front-door counters live. Defaults to this core's own
    /// registry; a multi-tenant fleet points every shard at the shared
    /// fleet registry so each tenant's `stats` shows the one real front
    /// door instead of ten zeros.
    front_registry: Arc<Registry>,
    tracer: Arc<Tracer>,
    metrics: CoreMetrics,
    engine_obs: EngineObs,
}

impl ServiceCore {
    /// A service over a starting database (possibly empty) and an empty
    /// log.
    pub fn new(db: Database, config: ServiceConfig) -> ServiceCore {
        // An empty starting database takes the configured storage mode, so
        // every `ServiceCore::new(Database::new(), config)` call site —
        // including tenant shards — honors `--storage` without plumbing.
        // A non-empty database keeps whatever mode built it.
        let mut db = if db.table_names().is_empty() && db.storage_mode() != config.storage {
            Database::with_mode(config.storage)
        } else {
            db
        };
        let registry = Registry::new();
        let tracer = Tracer::disabled();
        db.set_obs(&registry);
        let log = QueryLog::new();
        log.set_obs(&registry);
        let metrics = CoreMetrics::new(&registry);
        let engine_obs = EngineObs::new(Arc::clone(&registry), Arc::clone(&tracer));
        let mut online = OnlineAuditor::new(Vec::new());
        online.set_obs(&registry);
        // The auditor's shared execution doubles as the touch-index
        // footprint, so it must run with the index's join strategy.
        online.set_strategy(config.strategy);
        if config.scan_all_audits {
            online.set_mode(DispatchMode::ScanAll);
        }
        ServiceCore {
            db,
            log,
            index: TouchIndex::new(),
            online,
            registered: Vec::new(),
            triage: ReviewQueue::new(config.review_budget),
            config,
            journal: None,
            front_registry: Arc::clone(&registry),
            registry,
            tracer,
            metrics,
            engine_obs,
        }
    }

    /// Points the front-door fields of `stats` at a shared registry (the
    /// fleet registry, for tenant shards that don't own the TCP listener).
    pub fn set_front_registry(&mut self, registry: Arc<Registry>) {
        self.front_registry = registry;
    }

    /// The service's metrics registry (for exposition outside the request
    /// path — e.g. a final scrape at shutdown).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The configuration this core was built with (tenant shards are
    /// spawned with the same knobs as the default core).
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Attaches a phase tracer: pipeline spans (target-view, index-audit,
    /// WAL append/fsync, checkpoint) are recorded from here on.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Arc::clone(&tracer);
        self.engine_obs = EngineObs::new(Arc::clone(&self.registry), Arc::clone(&tracer));
        if let Some(j) = &self.journal {
            j.set_obs(&self.registry, tracer);
        }
    }

    /// A service whose log already has history (CLI `--log`): the index is
    /// grown entry-by-entry with [`TouchIndex::extend`], exactly as if the
    /// entries had arrived over the wire.
    pub fn preloaded(
        db: Database,
        log: QueryLog,
        config: ServiceConfig,
    ) -> Result<ServiceCore, AuditError> {
        let mut core = ServiceCore::new(db, config);
        let governor = Governor::unlimited();
        for entry in log.snapshot() {
            core.index.extend(&core.db, &entry, config.strategy, &governor)?;
            core.metrics.ingested.inc();
        }
        log.set_obs(&core.registry);
        core.log = log;
        Ok(core)
    }

    /// Current counters (a point-in-time read of the registry).
    pub fn counters(&self) -> ServiceCounters {
        ServiceCounters {
            queries_ingested: self.metrics.ingested.get(),
            queries_rejected: self.metrics.rejected.get(),
            dml_statements: self.metrics.dml.get(),
            governor_trips: self.metrics.governor_rejections.get(),
            events_emitted: self.metrics.events.get(),
        }
    }

    /// The versioned database (read-only view for batch tooling).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The query log (read-only view for batch tooling).
    pub fn log(&self) -> &QueryLog {
        &self.log
    }

    /// The attached journal, if the service is durable.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// How many standing audits are currently registered (`list-tenants`
    /// summaries).
    pub fn registered_audits(&self) -> usize {
        self.registered.len()
    }

    /// Whether a standing audit is registered under `name` (the fleet's
    /// `audit --all-tenants` fan-out skips tenants without it).
    pub fn has_audit(&self, name: &str) -> bool {
        self.registered.iter().any(|r| r.name == name)
    }

    /// Dispatch-index counters accumulated so far (probes, prunes,
    /// shortlist totals, rebuilds) — e.g. by recovery replay, for tooling
    /// that dismantles the core afterwards via [`ServiceCore::into_parts`].
    pub fn dispatch_stats(&self) -> audex_core::DispatchStats {
        self.online.dispatch_stats()
    }

    /// Dismantles the service into its database and log — the batch
    /// tooling path (`audex audit --data-dir`) recovers a service, then
    /// audits its state with the offline engine.
    pub fn into_parts(self) -> (Database, QueryLog) {
        (self.db, self.log)
    }

    /// Attaches a durability journal: every subsequent committed DML
    /// change, log append, and (un)registration is written to its WAL.
    /// Attach *after* recovery replay, or the replay would be re-journaled.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.db.set_change_sink(Arc::clone(&journal) as Arc<dyn ChangeSink>);
        self.log.set_sink(Arc::clone(&journal) as Arc<dyn audex_log::LogSink>);
        journal.set_redacted(self.config.redact_log);
        journal.set_obs(&self.registry, Arc::clone(&self.tracer));
        self.journal = Some(journal);
    }

    /// The review queue (read-only view for batch tooling and tests).
    pub fn triage(&self) -> &ReviewQueue {
        &self.triage
    }

    /// Writes a checkpoint covering everything journaled so far: the
    /// logical record prefix plus this service's derived state (touch-index
    /// footprints, per-audit batch states, counters). Errors if no journal
    /// is attached.
    pub fn checkpoint(&self) -> Result<PathBuf, PersistError> {
        let journal = self.journal.as_ref().ok_or_else(|| PersistError::Replay {
            site: "checkpoint requested but no journal is attached".into(),
        })?;
        let (footprints, skipped) = self.index.export();
        let c = self.counters();
        journal.write_checkpoint(CheckpointDerived {
            footprints,
            skipped,
            audit_states: self.online.export_states(),
            counters: [
                c.queries_ingested,
                c.queries_rejected,
                c.dml_statements,
                c.governor_trips,
                c.events_emitted,
            ],
            triage: self.triage.export(),
            db: self.db.mvcc_stores().map(|stores| DbSnapshot {
                last_ts: self.db.last_ts(),
                stores: stores.into_iter().cloned().collect(),
            }),
        })
    }

    /// Rebuilds a service from what [`Journal::open`] recovered, in two
    /// phases.
    ///
    /// **Phase A** (cheap) replays the checkpoint's record prefix: DML is
    /// applied directly, log appends only repopulate the log (their index
    /// footprints and audit-state contributions come from the checkpoint's
    /// derived state), and registrations are re-prepared at their recorded
    /// `now` against the exact mid-stream database — identical inputs, so
    /// an identical prepared audit. Then the checkpointed footprints, batch
    /// states, and counters are restored wholesale.
    ///
    /// **Phase B** replays the WAL tail through the full ingest path
    /// (footprint + online scoring), exactly as if the records had just
    /// arrived — with unlimited governor limits, since these requests were
    /// already admitted once.
    ///
    /// The journal is *not* attached here; attach it after this returns so
    /// replay is not re-journaled.
    ///
    /// Takes `recovered` mutably because the checkpoint's derived state —
    /// footprints, batch states, triage items, and the MVCC snapshot — is
    /// *moved* into the new core rather than deep-copied (for a large store
    /// those clones dominate recovery time). The summary fields every
    /// caller reports afterwards (`covers_seq`, record counts, `notes`,
    /// `torn`, `next_seq`) are left intact.
    pub fn recovered(
        recovered: &mut Recovered,
        config: ServiceConfig,
    ) -> Result<ServiceCore, PersistError> {
        let mut core = ServiceCore::new(Database::new(), config);

        if let Some(ck) = &mut recovered.checkpoint {
            // Phase A: rebuild raw state; skip all derived computation.
            // With an MVCC snapshot the covered DML is never re-applied —
            // the version stores restore wholesale and only the log/audit
            // records are walked — so this phase stops scaling with the
            // length of the change history.
            match (ck.db.take(), config.storage) {
                (Some(snap), StorageMode::Mvcc) => {
                    core.restore_snapshot_prefix(snap, &ck.records)?;
                }
                (snap, _) => {
                    ck.db = snap; // replay mode leaves the snapshot in place
                    for (seq, rec) in ck.records.iter().enumerate() {
                        core.replay_record(rec, seq as u64, false)?;
                    }
                }
            }
            core.index = TouchIndex::from_parts(
                std::mem::take(&mut ck.footprints),
                std::mem::take(&mut ck.skipped),
            );
            core.online.restore_states(std::mem::take(&mut ck.audit_states)).map_err(|e| {
                PersistError::Replay { site: format!("checkpoint audit states: {e}") }
            })?;
            core.metrics.ingested.store(ck.counters[0]);
            core.metrics.rejected.store(ck.counters[1]);
            core.metrics.dml.store(ck.counters[2]);
            core.metrics.governor_rejections.store(ck.counters[3]);
            core.metrics.events.store(ck.counters[4]);
            core.triage.restore(std::mem::take(&mut ck.triage));
        }

        // Phase B: the tail goes through the full ingest path.
        let base = recovered.checkpoint.as_ref().map_or(0, |c| c.covers_seq);
        for (i, rec) in recovered.tail.iter().enumerate() {
            core.replay_record(rec, base + i as u64, true)?;
        }
        core.metrics.publish_triage(&core.triage);
        Ok(core)
    }

    /// Phase A against a checkpointed MVCC snapshot: the version stores
    /// restore wholesale ([`Database::from_mvcc_stores`]), so the covered
    /// prefix's `CreateTable`/`Change` records are only *counted* — to know
    /// the exact per-table prefix each mid-stream registration originally
    /// saw — never re-applied. Log appends still repopulate the query log
    /// in order, and each registration re-prepares at its recorded `now`
    /// against an O(prefix) [`Database::fork_prefix`] fork of the restored
    /// stores (or the restored database itself when no DML follows it):
    /// identical inputs, so an identical prepared audit.
    fn restore_snapshot_prefix(
        &mut self,
        snap: DbSnapshot,
        records: &[WalRecord],
    ) -> Result<(), PersistError> {
        let mut db = Database::from_mvcc_stores(snap.stores, snap.last_ts)
            .map_err(|e| PersistError::Replay { site: format!("checkpoint db snapshot: {e}") })?;
        db.set_obs(&self.registry);
        self.db = db;

        // Whether any DML record occurs at or after index i — when none
        // does, a registration at i saw exactly the restored database and
        // needs no fork.
        let mut dml_after = vec![false; records.len() + 1];
        for i in (0..records.len()).rev() {
            let is_dml =
                matches!(records[i], WalRecord::CreateTable { .. } | WalRecord::Change { .. });
            dml_after[i] = dml_after[i + 1] || is_dml;
        }

        let mut counts: BTreeMap<Ident, usize> = BTreeMap::new();
        let mut clock = Timestamp(0); // a fresh database's last_ts
        for (seq, rec) in records.iter().enumerate() {
            let fail = |what: &dyn std::fmt::Display| PersistError::Replay {
                site: format!("record seq {seq}: {what}"),
            };
            match rec {
                WalRecord::CreateTable { name, ts, .. } => {
                    counts.entry(name.clone()).or_insert(0);
                    clock = clock.max(*ts);
                }
                WalRecord::Change { table, rec } => {
                    *counts.entry(table.clone()).or_insert(0) += 1;
                    clock = clock.max(rec.ts);
                }
                WalRecord::Register { name, expr, now } => {
                    let parsed = audex_sql::parse_audit(expr).map_err(|e| fail(&e))?;
                    let governor = Governor::unlimited();
                    let fork;
                    let db = if dml_after[seq] {
                        fork = self.db.fork_prefix(&counts, clock).map_err(|e| fail(&e))?;
                        &fork
                    } else {
                        &self.db
                    };
                    let prepared = {
                        let engine = AuditEngine::with_options(
                            db,
                            &self.log,
                            EngineOptions { strategy: self.config.strategy, ..Default::default() },
                        )
                        .with_obs(self.engine_obs.clone());
                        engine.prepare_governed(&parsed, *now, &governor).map_err(|e| fail(&e))?
                    };
                    if dml_after[seq] {
                        // The fork's reads are the ones the live run charged
                        // to the primary database.
                        self.db.absorb_scan(db.mvcc_scan_stats());
                    }
                    let id = self.online.push(prepared);
                    self.registered.push(RegisteredAudit { name: name.clone(), id });
                }
                // Everything else behaves exactly as checkpointed-prefix
                // replay always has (derived state restores separately).
                other => self.replay_record(other, seq as u64, false)?,
            }
        }
        Ok(())
    }

    /// Applies one journaled record during recovery. With `derive` set the
    /// record also feeds the touch index / online auditor / counters (WAL
    /// tail); without it only raw state is rebuilt (checkpointed prefix —
    /// its derived state is restored separately).
    fn replay_record(
        &mut self,
        rec: &WalRecord,
        seq: u64,
        derive: bool,
    ) -> Result<(), PersistError> {
        let fail = |what: &dyn std::fmt::Display| PersistError::Replay {
            site: format!("record seq {seq}: {what}"),
        };
        match rec {
            WalRecord::CreateTable { name, schema, ts } => {
                self.db.create_table(name.clone(), schema.clone(), *ts).map_err(|e| fail(&e))?;
                if derive {
                    self.metrics.dml.inc();
                }
            }
            WalRecord::Change { table, rec } => {
                self.db.apply_change(table, rec).map_err(|e| fail(&e))?;
                if derive {
                    // Statement boundaries are not journaled (one statement
                    // may emit many change records), so tail replay counts
                    // records; checkpoint-covered counters restore exactly.
                    self.metrics.dml.inc();
                }
            }
            WalRecord::LogAppend { ts, user, role, purpose, sql } => {
                let context = AccessContext::new(user.clone(), role.clone(), purpose.clone());
                if derive {
                    let query = audex_sql::parse_query(sql).map_err(|e| fail(&e))?;
                    let entry = Arc::new(LoggedQuery::new(
                        QueryId(self.log.len() as u64 + 1),
                        query,
                        sql.clone(),
                        *ts,
                        context.clone(),
                    ));
                    // Replay shares one execution between scoring and the
                    // index exactly like the live `handle_log`, so the
                    // rebuilt index is byte-identical to the one the live
                    // run maintained.
                    let (scores, footprint) =
                        self.online.observe_with_footprint(&self.db, &entry).unwrap_or_default();
                    self.index.extend_prepared(entry.id, footprint);
                    if !scores.is_empty() {
                        self.triage.observe(
                            entry.id,
                            *ts,
                            user.clone(),
                            role.clone(),
                            purpose.clone(),
                            &scores,
                        );
                    }
                    self.metrics.events.add(events_for_scores(&scores) as u64);
                    self.metrics.ingested.inc();
                }
                // The text was parse-validated when the live run accepted
                // it, so recovery appends without re-parsing — the AST
                // materializes lazily if an audit ever needs this entry.
                // This keeps checkpointed recovery time proportional to the
                // WAL tail, not to how many queries the store has logged.
                self.log.record_prevalidated(sql, *ts, context);
            }
            WalRecord::Register { name, expr, now } => {
                let parsed = audex_sql::parse_audit(expr).map_err(|e| fail(&e))?;
                let governor = Governor::unlimited();
                let prepared = {
                    let engine = AuditEngine::with_options(
                        &self.db,
                        &self.log,
                        EngineOptions { strategy: self.config.strategy, ..Default::default() },
                    )
                    .with_obs(self.engine_obs.clone());
                    engine.prepare_governed(&parsed, *now, &governor).map_err(|e| fail(&e))?
                };
                // Every successful registration (and only those) is
                // journaled, so replay walks the same push sequence and
                // assigns the same stable ids as the live run.
                let id = self.online.push(prepared);
                self.registered.push(RegisteredAudit { name: name.clone(), id });
            }
            WalRecord::Unregister { name } => {
                let idx = self
                    .registered
                    .iter()
                    .position(|r| &r.name == name)
                    .ok_or_else(|| fail(&format!("unregister of unknown audit {name:?}")))?;
                let reg = self.registered.remove(idx);
                self.online.remove(reg.id);
            }
            // Review decisions feed the queue only on tail replay: the
            // checkpointed prefix restores its queue (states included)
            // wholesale, like the other derived state.
            WalRecord::ReviewAck { query } => {
                if derive {
                    self.triage.set_state(*query, ReviewState::Acked);
                }
            }
            WalRecord::ReviewDismiss { query } => {
                if derive {
                    self.triage.set_state(*query, ReviewState::Dismissed);
                }
            }
            WalRecord::ReviewAckBulk { queries } => {
                if derive {
                    for query in queries {
                        self.triage.set_state(*query, ReviewState::Acked);
                    }
                }
            }
            // Weights are configuration, not checkpoint-derived state, so
            // they replay unconditionally (the checkpoint's record prefix
            // carries the full ordered history).
            WalRecord::SetWeight { table, column, weight } => {
                self.triage.set_weight(table.clone(), column.clone(), *weight);
            }
            WalRecord::LogAppendRedacted {
                ts,
                user,
                role,
                purpose,
                tables,
                accessed,
                scores,
                ..
            } => {
                // The raw SQL is gone by design. Synthesize a placeholder
                // query from the journaled structure so the log keeps its
                // dense ids, timestamps, and annotations; everything the
                // queue needs rides in the redacted scores. Batch re-audits
                // of the redacted span are impossible — a recovered `audit`
                // honestly reports those queries as skipped.
                let context = AccessContext::new(user.clone(), role.clone(), purpose.clone());
                let sql = synthesize_redacted_sql(tables, accessed);
                if derive {
                    let id = QueryId(self.log.len() as u64 + 1);
                    self.index.extend_prepared(id, None);
                    if !scores.is_empty() {
                        self.triage.observe_redacted(
                            id,
                            *ts,
                            user.clone(),
                            role.clone(),
                            purpose.clone(),
                            scores,
                        );
                    }
                    let touched: BTreeSet<AuditId> = scores.iter().map(|s| s.audit).collect();
                    self.metrics.events.add((scores.len() + touched.len()) as u64);
                    self.metrics.ingested.inc();
                }
                self.log.record_text(&sql, *ts, context).map_err(|e| fail(&e))?;
            }
        }
        Ok(())
    }

    /// The latest instant the service has seen (backlog or log), used as
    /// the default `now` for registrations.
    pub fn latest_instant(&self) -> Timestamp {
        let log_ts = self.log.last_ts().unwrap_or(Timestamp(0));
        self.db.last_ts().max(log_ts)
    }

    /// Handles one request.
    pub fn handle(&mut self, req: Request) -> Outcome {
        let started = std::time::Instant::now();
        let cmd = req.cmd_name();
        let is_log = matches!(req, Request::Log { .. });
        let mut outcome = match req {
            Request::Dml { ts, sql } => self.handle_dml(ts, &sql),
            Request::Log { ts, user, role, purpose, sql } => {
                self.handle_log(ts, AccessContext::new(user, role, purpose), &sql)
            }
            Request::Register { name, expr, now } => self.handle_register(name, &expr, now),
            Request::Unregister { name } => self.handle_unregister(&name),
            Request::Audit { name } => self.handle_audit(&name),
            Request::Triage => Outcome::reply(self.triage_json()),
            Request::Queue { top, offset } => Outcome::reply(self.queue_json(top, offset)),
            Request::Ack { query } => self.handle_review(QueryId(query), ReviewState::Acked),
            Request::AckTemplate { template } => self.handle_ack_template(template),
            Request::Dismiss { query } => {
                self.handle_review(QueryId(query), ReviewState::Dismissed)
            }
            Request::Weight { table, column, weight } => self.handle_weight(&table, column, weight),
            Request::Stats => Outcome::reply(self.stats_json()),
            Request::Metrics => {
                self.db.refresh_mvcc_gauges();
                Outcome::reply(obj([
                    ("ok", Json::Bool(true)),
                    ("metrics", Json::Str(self.registry.render_prometheus())),
                ]))
            }
            Request::Subscribe => Outcome::reply(obj([("ok", Json::Bool(true))])),
            Request::Shutdown => {
                // Flush the WAL so everything acknowledged is durable
                // before the process exits.
                if let Some(j) = &self.journal {
                    let _ = j.sync();
                }
                Outcome {
                    response: obj([("ok", Json::Bool(true)), ("stopping", Json::Bool(true))]),
                    events: Vec::new(),
                    shutdown: true,
                }
            }
            // Fleet-scoped commands need the shard map; a bare single-tenant
            // core (stdio embedders, tests) answers with a structured error
            // rather than counting it as a rejected *ingest*.
            other if other.is_fleet_op() => Outcome::reply(obj([
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::Str(format!(
                        "{}: tenant operations need a multi-tenant service",
                        other.cmd_name()
                    )),
                ),
            ])),
            other => Outcome::reply(obj([
                ("ok", Json::Bool(false)),
                ("error", Json::Str(format!("unhandled command {:?}", other.cmd_name()))),
            ])),
        };
        self.maybe_auto_checkpoint();
        let elapsed = started.elapsed();
        self.registry
            .latency_histogram(
                "audex_request_seconds",
                "Wall-clock per wire request, by command.",
                &[("cmd", cmd)],
            )
            .observe_duration(elapsed);
        if is_log {
            self.metrics.ingest_seconds.observe_duration(elapsed);
            // Periodic metrics broadcast. Not counted in events_emitted:
            // recovery replay does not re-emit metrics events, and that
            // counter must rebuild byte-identically from the journal.
            if let Some(every) = self.config.metrics_every {
                let ingested = self.metrics.ingested.get();
                let accepted = outcome.response.get("ok") == Some(&Json::Bool(true));
                if accepted && every > 0 && ingested > 0 && ingested.is_multiple_of(every) {
                    outcome.events.push(obj([
                        ("event", Json::from("metrics")),
                        ("queries_ingested", Json::from(ingested)),
                        ("prometheus", Json::Str(self.registry.render_prometheus())),
                    ]));
                }
            }
        }
        outcome
    }

    /// Writes a checkpoint when the journal's lag crosses the configured
    /// threshold. A failed auto-checkpoint is not fatal to the request that
    /// triggered it: the lag stays high and `stats` makes it visible.
    fn maybe_auto_checkpoint(&mut self) {
        let due = match (&self.journal, self.config.checkpoint_every) {
            (Some(j), Some(every)) => j.wedged().is_none() && j.checkpoint_lag() >= every,
            _ => false,
        };
        if due {
            let _ = self.checkpoint();
        }
    }

    fn reject(&mut self, message: String) -> Outcome {
        self.metrics.rejected.inc();
        Outcome::reply(obj([("ok", Json::Bool(false)), ("error", Json::Str(message))]))
    }

    /// A governor trip: the request was refused for capacity, not
    /// validity — `"busy":true` tells the client to back off and retry.
    fn backpressure(&mut self, e: &AuditError) -> Outcome {
        self.metrics.governor_rejections.inc();
        self.metrics.rejected.inc();
        Outcome::reply(obj([
            ("ok", Json::Bool(false)),
            ("busy", Json::Bool(true)),
            ("error", Json::Str(e.to_string())),
        ]))
    }

    fn handle_dml(&mut self, ts: Timestamp, sql: &str) -> Outcome {
        let stmts = match audex_sql::parse_script(sql) {
            Ok(s) => s,
            Err(e) => return self.reject(format!("dml does not parse: {e}")),
        };
        // Session-script semantics: each statement advances the clock one
        // second so versions stay distinct.
        let mut clock = ts;
        for (i, stmt) in stmts.iter().enumerate() {
            if let Err(e) = self.db.execute(stmt, clock) {
                // Statements before `i` are already applied (the backlog is
                // append-only); say so instead of pretending atomicity.
                self.metrics.rejected.inc();
                return Outcome::reply(obj([
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(format!("statement {}: {e}", i + 1))),
                    ("applied", Json::from(i)),
                ]));
            }
            self.metrics.dml.inc();
            clock = clock.plus_seconds(1);
        }
        Outcome::reply(obj([
            ("ok", Json::Bool(true)),
            ("applied", Json::from(stmts.len())),
            ("backlog_ts", Json::Int(self.db.last_ts().0)),
        ]))
    }

    fn handle_log(&mut self, ts: Timestamp, context: AccessContext, sql: &str) -> Outcome {
        // Validate before any mutation (the wire peer gets parse errors
        // and order violations as plain rejections, never a half-ingested
        // entry).
        let query = match audex_sql::parse_query(sql) {
            Ok(q) => q,
            Err(e) => return self.reject(format!("query does not parse: {e}")),
        };
        if let Some(last) = self.log.last_ts() {
            if ts < last {
                return self.reject(format!(
                    "out-of-order log append: offered {ts}, log is already at {last}"
                ));
            }
        }
        let entry = Arc::new(LoggedQuery::new(
            QueryId(self.log.len() as u64 + 1),
            query,
            sql.to_string(),
            ts,
            context,
        ));

        // Admission control: the indexing step ticks this request's
        // governor before any state is touched, so a trip rejects the
        // whole request with nothing mutated.
        let governor = Governor::arm(&self.config.limits);
        if let Err(e) = governor.tick(AuditPhase::Indexing) {
            return self.backpressure(&e);
        }

        // Score online and fold the touch-index footprint in from the
        // *same* execution — one `query_with` per ingested query instead
        // of two. `observe` is pure w.r.t. the log; an error here (none
        // are currently reachable) downgrades to "no scores, skip" so the
        // log and index never diverge.
        let (scores, footprint) =
            self.online.observe_with_footprint(&self.db, &entry).unwrap_or_default();
        // The redacted journal record carries the query's structure in
        // place of its text; capture it before the footprint moves into
        // the index.
        let (fp_tables, fp_accessed) = match (&footprint, self.config.redact_log) {
            (Some(fp), true) => (
                fp.bases.iter().cloned().collect::<Vec<_>>(),
                fp.covered.iter().cloned().collect::<Vec<_>>(),
            ),
            _ => (Vec::new(), Vec::new()),
        };
        self.index.extend_prepared(entry.id, footprint);

        // Commit. The validated append re-checks ordering under the log's
        // own lock; it cannot fail after the checks above.
        let id = match self.log.record_text_validated(sql, ts, entry.context.clone()) {
            Ok(id) => id,
            Err(e) => return self.reject(format!("log append failed: {e}")),
        };
        self.metrics.ingested.inc();

        // Flagged queries enter the review queue with their evidence.
        if !scores.is_empty() {
            self.triage.observe(
                id,
                ts,
                entry.context.user.clone(),
                entry.context.role.clone(),
                entry.context.purpose.clone(),
                &scores,
            );
            self.metrics.publish_triage(&self.triage);
        }
        // Under --redact-log the journal's sink stayed silent; journal the
        // structural record now that the append committed.
        if self.config.redact_log {
            if let Some(j) = &self.journal {
                let redacted: Vec<RedactedScore> =
                    scores.iter().map(RedactedScore::from_score).collect();
                j.record_log_redacted(
                    &entry,
                    fnv1a64(sql.as_bytes()),
                    fp_tables,
                    fp_accessed,
                    redacted,
                );
            }
        }

        let mut events = Vec::new();
        let mut score_rows = Vec::new();
        let mut touched_audits = BTreeSet::new();
        for s in &scores {
            touched_audits.insert(s.audit);
            let name = self.audit_name(s.audit);
            let row = obj([
                ("audit", Json::Str(name)),
                ("fact_coverage", Json::Float(s.fact_coverage)),
                ("column_coverage", Json::Float(s.column_coverage)),
                ("closeness", Json::Float(s.closeness)),
            ]);
            score_rows.push(row.clone());
            let mut fields = vec![
                ("event".to_string(), Json::from("score")),
                ("query".to_string(), Json::Int(id.0 as i64)),
            ];
            if let Json::Obj(inner) = row {
                fields.extend(inner);
            }
            events.push(Json::Obj(fields));
        }
        // A verdict event per audit this query contributed to, so
        // subscribers track the running batch state without polling.
        for id in touched_audits {
            events.push(self.verdict_event(id));
        }
        self.metrics.events.add(events.len() as u64);

        Outcome {
            response: obj([
                ("ok", Json::Bool(true)),
                ("id", Json::Int(id.0 as i64)),
                ("scores", Json::Arr(score_rows)),
            ]),
            events,
            shutdown: false,
        }
    }

    /// The registered name behind a stable audit id (the raw id when the
    /// registration is gone — can only happen for in-flight scores).
    /// `registered` stays ascending in id (ids are assigned monotonically
    /// at push and removal preserves order), so this is a binary search —
    /// it runs once per score row, and a busy ingest path at 1000+
    /// standing audits cannot afford a linear scan per score.
    fn audit_name(&self, id: AuditId) -> String {
        self.registered
            .binary_search_by_key(&id, |r| r.id)
            .ok()
            .map(|i| self.registered[i].name.clone())
            .unwrap_or_else(|| id.to_string())
    }

    fn verdict_event(&self, id: AuditId) -> Json {
        obj([
            ("event", Json::from("verdict")),
            ("audit", Json::Str(self.audit_name(id))),
            ("suspicious", Json::Bool(self.online.is_suspicious(id))),
            ("degree", Json::Float(self.online.degree(id))),
            (
                "contributing",
                Json::Arr(
                    self.online.contributing(id).iter().map(|q| Json::Int(q.0 as i64)).collect(),
                ),
            ),
        ])
    }

    fn handle_register(&mut self, name: String, expr: &str, now: Option<Timestamp>) -> Outcome {
        if self.registered.iter().any(|r| r.name == name) {
            return self.reject(format!("audit {name:?} is already registered (unregister first)"));
        }
        let parsed = match audex_sql::parse_audit(expr) {
            Ok(e) => e,
            Err(e) => return self.reject(format!("audit expression does not parse: {e}")),
        };
        let now = now.unwrap_or_else(|| self.latest_instant());
        let governor = Governor::arm(&self.config.limits);
        let prepared = {
            let engine = AuditEngine::with_options(
                &self.db,
                &self.log,
                EngineOptions { strategy: self.config.strategy, ..Default::default() },
            )
            .with_obs(self.engine_obs.clone());
            match engine.prepare_governed(&parsed, now, &governor) {
                Ok(p) => p,
                Err(e) if is_governor_trip(&e) => return self.backpressure(&e),
                Err(e) => return self.reject(format!("audit does not prepare: {e}")),
            }
        };
        let target_size = prepared.view.len();
        let total = prepared.model.count(target_size);
        let id = self.online.push(prepared);
        self.registered.push(RegisteredAudit { name: name.clone(), id });
        if let Some(j) = &self.journal {
            j.record_register(&name, expr, now);
        }
        Outcome::reply(obj([
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name)),
            ("target_size", Json::from(target_size)),
            ("total_granules", u128_json(total)),
            ("now", Json::Int(now.0)),
        ]))
    }

    fn handle_unregister(&mut self, name: &str) -> Outcome {
        match self.registered.iter().position(|r| r.name == name) {
            Some(idx) => {
                let reg = self.registered.remove(idx);
                self.online.remove(reg.id);
                if let Some(j) = &self.journal {
                    j.record_unregister(name);
                }
                Outcome::reply(obj([("ok", Json::Bool(true)), ("name", Json::from(name))]))
            }
            None => self.reject(format!("no registered audit named {name:?}")),
        }
    }

    fn handle_audit(&mut self, name: &str) -> Outcome {
        let Some(id) = self.registered.iter().find(|r| r.name == name).map(|r| r.id) else {
            return self.reject(format!("no registered audit named {name:?}"));
        };
        let governor = Governor::arm(&self.config.limits);
        let verdict = {
            let Some(prepared) = self.online.audit(id) else {
                return self.reject(format!("audit {name:?} has no online state"));
            };
            let admitted: BTreeSet<QueryId> = self
                .log
                .snapshot()
                .iter()
                .filter(|e| prepared.filter.admits(e))
                .map(|e| e.id)
                .collect();
            let span = self.engine_obs.phase("index-audit");
            match self.index.evaluate_governed(prepared, &admitted, &governor) {
                Ok(v) => v,
                Err(e) => {
                    span.mark_truncated();
                    drop(span);
                    if is_governor_trip(&e) {
                        return self.backpressure(&e);
                    }
                    return self.reject(format!("audit failed: {e}"));
                }
            }
        };
        Outcome::reply(obj([
            ("ok", Json::Bool(true)),
            ("name", Json::from(name)),
            ("suspicious", Json::Bool(verdict.suspicious)),
            ("accessed_granules", u128_json(verdict.accessed_granules)),
            ("total_granules", u128_json(verdict.total_granules)),
            ("degree", Json::Float(verdict.degree)),
            (
                "contributing",
                Json::Arr(verdict.contributing.iter().map(|q| Json::Int(q.0 as i64)).collect()),
            ),
            (
                "witnesses",
                Json::Arr(verdict.witnesses.iter().map(|q| Json::Int(q.0 as i64)).collect()),
            ),
            ("skipped", Json::Arr(verdict.skipped.iter().map(|q| Json::Int(q.0 as i64)).collect())),
        ]))
    }

    /// The `triage` report: queue counts plus the mined recurring templates
    /// (open items grouped by who asked and what they covered), with the
    /// compression ratio the grouping achieves.
    fn triage_json(&self) -> Json {
        let counts = self.triage.counts();
        let templates: Vec<Json> = self
            .triage
            .templates()
            .iter()
            .map(|t| {
                obj([
                    ("role", Json::Str(t.role.value.clone())),
                    ("purpose", Json::Str(t.purpose.value.clone())),
                    ("count", Json::from(t.count)),
                    ("suspicion", Json::Float(t.suspicion)),
                    ("example", Json::Int(t.example.0 as i64)),
                    (
                        "audits",
                        Json::Arr(
                            t.audits.iter().map(|a| Json::Str(self.audit_name(*a))).collect(),
                        ),
                    ),
                    (
                        "columns",
                        Json::Arr(
                            t.covered
                                .iter()
                                .map(|(tb, c)| Json::Str(format!("{tb}.{c}")))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        obj([
            ("ok", Json::Bool(true)),
            ("open", Json::from(counts.open)),
            ("acked", Json::from(counts.acked)),
            ("dismissed", Json::from(counts.dismissed)),
            (
                "budget",
                match self.triage.budget() {
                    Some(b) => Json::from(b),
                    None => Json::Null,
                },
            ),
            ("weights", Json::from(self.triage.weights().len())),
            ("templates", Json::Arr(templates)),
            ("compression", Json::Float(self.triage.compression())),
        ])
    }

    /// One page of the ranked review queue. `top` defaults to the
    /// configured auditor budget (then 10); only open items rank.
    fn queue_json(&self, top: Option<u64>, offset: u64) -> Json {
        let counts = self.triage.counts();
        let items: Vec<Json> = self
            .triage
            .page(top, offset)
            .into_iter()
            .map(|(item, priority)| {
                obj([
                    ("query", Json::Int(item.query.0 as i64)),
                    ("priority", Json::Float(priority)),
                    ("suspicion", Json::Float(item.suspicion)),
                    ("ts", Json::Int(item.ts.0)),
                    ("user", Json::Str(item.user.value.clone())),
                    ("role", Json::Str(item.role.value.clone())),
                    ("purpose", Json::Str(item.purpose.value.clone())),
                    (
                        "audits",
                        Json::Arr(
                            item.audits.iter().map(|a| Json::Str(self.audit_name(*a))).collect(),
                        ),
                    ),
                    (
                        "columns",
                        Json::Arr(
                            item.covered
                                .iter()
                                .map(|(t, c)| Json::Str(format!("{t}.{c}")))
                                .collect(),
                        ),
                    ),
                    ("touched", Json::from(item.touched)),
                    ("exposed", Json::from(item.exposed)),
                ])
            })
            .collect();
        obj([
            ("ok", Json::Bool(true)),
            ("total_open", Json::from(counts.open)),
            ("offset", Json::from(offset)),
            ("items", Json::Arr(items)),
        ])
    }

    /// `ack`/`dismiss`: close out a review-queue item. Unknown ids are
    /// rejected without a journal write, so replay only ever sees
    /// transitions that actually happened.
    fn handle_review(&mut self, query: QueryId, state: ReviewState) -> Outcome {
        if !self.triage.set_state(query, state) {
            return self.reject(format!("query {query} was never flagged"));
        }
        if let Some(j) = &self.journal {
            match state {
                ReviewState::Acked => j.record_review_ack(query),
                ReviewState::Dismissed => j.record_review_dismiss(query),
                ReviewState::Open => {}
            }
        }
        self.metrics.publish_triage(&self.triage);
        Outcome::reply(obj([
            ("ok", Json::Bool(true)),
            ("query", Json::Int(query.0 as i64)),
            ("state", Json::from(state.as_str())),
        ]))
    }

    /// `ack` with a `template` index: acknowledge every open item matching
    /// one mined template as a single decision. The resolved query ids are
    /// journaled in one [`WalRecord::ReviewAckBulk`] record — template
    /// mining is derived state, so replay never re-mines.
    fn handle_ack_template(&mut self, template: u64) -> Outcome {
        let queries = self.triage.template_queries(template as usize);
        if queries.is_empty() {
            return self.reject(format!(
                "template {template} has no open items (templates are mined live; \
                 run triage for the current listing)"
            ));
        }
        for q in &queries {
            self.triage.set_state(*q, ReviewState::Acked);
        }
        if let Some(j) = &self.journal {
            j.record_review_ack_bulk(queries.clone());
        }
        self.metrics.publish_triage(&self.triage);
        Outcome::reply(obj([
            ("ok", Json::Bool(true)),
            ("template", Json::Int(template as i64)),
            ("acked", Json::Int(queries.len() as i64)),
            ("queries", Json::Arr(queries.iter().map(|q| Json::Int(q.0 as i64)).collect())),
            ("state", Json::from(ReviewState::Acked.as_str())),
        ]))
    }

    /// `weight`: set a per-table or per-column sensitivity multiplier.
    /// Weights are configuration, not derived state — they journal
    /// unconditionally and replay unconditionally.
    fn handle_weight(&mut self, table: &str, column: Option<String>, weight: f64) -> Outcome {
        let table = Ident::new(table);
        let column = column.map(Ident::new);
        self.triage.set_weight(table.clone(), column.clone(), weight);
        if let Some(j) = &self.journal {
            j.record_weight(table.clone(), column.clone(), weight);
        }
        Outcome::reply(obj([
            ("ok", Json::Bool(true)),
            ("table", Json::Str(table.value.clone())),
            (
                "column",
                match &column {
                    Some(c) => Json::Str(c.value.clone()),
                    None => Json::Null,
                },
            ),
            ("weight", Json::Float(weight)),
        ]))
    }

    fn stats_json(&self) -> Json {
        let stats = self.db.snapshot_stats();
        let total_reads = stats.hits + stats.misses;
        let hit_rate = if total_reads == 0 { 0.0 } else { stats.hits as f64 / total_reads as f64 };
        self.db.refresh_mvcc_gauges();
        let c = self.counters();
        let mut fields: Vec<(String, Json)> = [
            ("ok", Json::Bool(true)),
            ("queries_ingested", Json::from(c.queries_ingested)),
            ("queries_rejected", Json::from(c.queries_rejected)),
            ("dml_statements", Json::from(c.dml_statements)),
            ("governor_trips", Json::from(c.governor_trips)),
            ("events_emitted", Json::from(c.events_emitted)),
            ("log_len", Json::from(self.log.len())),
            ("index_len", Json::from(self.index.len())),
            ("index_skipped", Json::from(self.index.skipped_ids().len())),
            ("registered_audits", Json::from(self.registered.len())),
            (
                "dispatch_mode",
                Json::from(match self.online.mode() {
                    DispatchMode::Indexed => "indexed",
                    DispatchMode::ScanAll => "scan_all",
                }),
            ),
            ("dispatch_probes", Json::from(self.online.dispatch_stats().probes)),
            ("dispatch_pruned", Json::from(self.online.dispatch_stats().pruned)),
            ("dispatch_shortlisted", Json::from(self.online.dispatch_stats().shortlisted)),
            ("dispatch_rebuilds", Json::from(self.online.dispatch_stats().rebuilds)),
            (
                "dispatch_fact_probe_builds",
                Json::from(self.online.dispatch_stats().fact_probe_builds),
            ),
            ("dispatch_fact_probe_hits", Json::from(self.online.dispatch_stats().fact_probe_hits)),
            ("triage_open", Json::from(self.triage.counts().open)),
            ("triage_acked", Json::from(self.triage.counts().acked)),
            ("triage_dismissed", Json::from(self.triage.counts().dismissed)),
            ("backlog_ts", Json::Int(self.db.last_ts().0)),
            ("snapshot_cache_hits", Json::from(stats.hits)),
            ("snapshot_cache_misses", Json::from(stats.misses)),
            ("snapshot_cache_hit_rate", Json::Float(hit_rate)),
            ("snapshot_cache_entries", Json::from(self.db.snapshot_cache_len())),
            (
                "storage_mode",
                Json::from(match self.db.storage_mode() {
                    StorageMode::Mvcc => "mvcc",
                    StorageMode::Replay => "replay",
                }),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        if let Some(m) = self.db.mvcc_stats() {
            let scan = self.db.mvcc_scan_stats();
            fields.extend(
                [
                    ("mvcc_live_versions", m.live_versions),
                    ("mvcc_dead_versions", m.dead_versions),
                    ("mvcc_store_bytes", m.approx_bytes),
                    ("mvcc_visibility_probes", scan.probes),
                    ("mvcc_versions_examined", scan.versions_examined),
                ]
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::from(v))),
            );
        }
        if let Some(j) = &self.journal {
            let jc = j.counters();
            fields.extend(journal_stats_fields(&jc));
        }
        // Registry handles are get-or-create, so these are the same cells
        // the TCP front door counts into (all zero under --stdio). In a
        // fleet this is the shared fleet registry — one front door serves
        // every tenant.
        let fm = crate::server::FrontMetrics::new(&self.front_registry);
        fields.extend(
            [
                ("connections", fm.connections.get()),
                ("connections_total", fm.connections_total.get() as i64),
                ("connections_shed", fm.connections_shed.get() as i64),
                ("subscribers", fm.subscribers.get()),
                ("subscribers_evicted", fm.subscribers_evicted.get() as i64),
                ("subscriber_disconnects", fm.subscriber_disconnects.get() as i64),
                ("frames_malformed", fm.frames_malformed.get() as i64),
                ("frames_oversized", fm.frames_oversized.get() as i64),
                ("frames_truncated", fm.frames_truncated.get() as i64),
                ("conn_idle_timeouts", fm.conn_idle_timeouts.get() as i64),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::Int(v))),
        );
        Json::Obj(fields)
    }
}

/// The journal's health/throughput counters as `stats` fields, shared with
/// the CLI's offline `--stats` report so both render identically.
pub fn journal_stats_fields(jc: &audex_persist::JournalCounters) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("journal_records_appended".to_string(), Json::from(jc.records_appended)),
        ("journal_fsyncs".to_string(), Json::from(jc.fsyncs)),
        ("journal_bytes_written".to_string(), Json::from(jc.bytes_written)),
        ("journal_checkpoints_written".to_string(), Json::from(jc.checkpoints_written)),
        ("journal_last_checkpoint_seq".to_string(), Json::from(jc.last_checkpoint_seq)),
        ("journal_checkpoint_lag".to_string(), Json::from(jc.checkpoint_lag)),
        ("journal_segments".to_string(), Json::from(jc.segments)),
        ("journal_segment_bytes".to_string(), Json::from(jc.segment_bytes)),
    ];
    fields.push((
        "journal_wedged".to_string(),
        match &jc.wedged {
            Some(e) => Json::Str(e.clone()),
            None => Json::Null,
        },
    ));
    fields
}

/// A parseable placeholder for a redacted log entry, built from the
/// journaled structure alone: the columns the query accessed and the tables
/// it referenced. Replay records this in place of the lost raw SQL; the
/// index skips it (its footprint cannot be re-derived), and the review
/// queue never reads it.
fn synthesize_redacted_sql(tables: &[Ident], accessed: &[(Ident, Ident)]) -> String {
    let cols = if accessed.is_empty() {
        "redacted".to_string()
    } else {
        accessed.iter().map(|(_, c)| c.to_string()).collect::<Vec<_>>().join(", ")
    };
    let from = if tables.is_empty() {
        "redacted".to_string()
    } else {
        tables.iter().map(Ident::to_string).collect::<Vec<_>>().join(", ")
    };
    format!("SELECT {cols} FROM {from}")
}

/// How many event lines one scored log append emits: one per score plus one
/// verdict per distinct audit touched (mirrored by recovery replay so the
/// `events_emitted` counter survives a crash exactly).
fn events_for_scores(scores: &[audex_core::QueryScore]) -> usize {
    let touched: BTreeSet<AuditId> = scores.iter().map(|s| s.audit).collect();
    scores.len() + touched.len()
}

/// True for errors that mean "over capacity right now", not "invalid".
fn is_governor_trip(e: &AuditError) -> bool {
    matches!(
        e,
        AuditError::DeadlineExceeded { .. }
            | AuditError::BudgetExhausted { .. }
            | AuditError::Cancelled { .. }
    )
}

fn u128_json(v: u128) -> Json {
    match u64::try_from(v) {
        Ok(small) => Json::from(small),
        // Beyond 2^64 the count is astronomically large anyway; a string
        // keeps the exact digits without pretending f64 precision.
        Err(_) => Json::Str(v.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn core() -> ServiceCore {
        let mut c = ServiceCore::new(Database::new(), ServiceConfig::default());
        let r = c.handle(Request::Dml {
            ts: Timestamp(100),
            sql: "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT); \
                  INSERT INTO Patients VALUES ('p1', '120016', 'cancer'), \
                  ('p2', '145568', 'flu');"
                .into(),
        });
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);
        c
    }

    fn log_req(ts: i64, sql: &str) -> Request {
        Request::Log {
            ts: Timestamp(ts),
            user: "u-1".into(),
            role: "nurse".into(),
            purpose: "treatment".into(),
            sql: sql.into(),
        }
    }

    #[test]
    fn full_command_flow() {
        let mut c = core();
        let r = c.handle(Request::Register {
            name: "cancer".into(),
            expr: "DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 \
                   AUDIT disease FROM Patients WHERE zipcode = '120016'"
                .into(),
            now: Some(Timestamp(5000)),
        });
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);
        assert_eq!(r.response.get("target_size").and_then(Json::as_int), Some(1));

        // An innocent query: ingested, indexed, no scores.
        let r = c.handle(log_req(200, "SELECT pid FROM Patients WHERE zipcode = '145568'"));
        assert_eq!(r.response.get("id").and_then(Json::as_int), Some(1));
        assert_eq!(r.response.get("scores").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
        assert!(r.events.is_empty());

        // The leak: scored against the standing audit, events emitted.
        let r = c.handle(log_req(300, "SELECT disease FROM Patients WHERE zipcode = '120016'"));
        assert_eq!(r.response.get("id").and_then(Json::as_int), Some(2));
        assert_eq!(r.response.get("scores").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(r.events.len(), 2, "one score + one verdict event");
        assert_eq!(r.events[1].get("suspicious"), Some(&Json::Bool(true)));

        // Index-backed audit matches the streamed verdict.
        let r = c.handle(Request::Audit { name: "cancer".into() });
        assert_eq!(r.response.get("suspicious"), Some(&Json::Bool(true)), "{}", r.response);
        assert_eq!(
            r.response.get("contributing"),
            Some(&Json::Arr(vec![Json::Int(2)])),
            "{}",
            r.response
        );

        // And it agrees byte-for-byte with a from-scratch batch engine run.
        let engine = AuditEngine::new(&c.db, &c.log);
        let expr = audex_sql::parse_audit(
            "DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 \
             AUDIT disease FROM Patients WHERE zipcode = '120016'",
        )
        .unwrap();
        let report = engine.audit_at(&expr, Timestamp(5000)).unwrap();
        assert!(report.verdict.suspicious);
        assert_eq!(report.verdict.contributing, vec![QueryId(2)]);

        let stats = c.handle(Request::Stats).response;
        assert_eq!(stats.get("queries_ingested").and_then(Json::as_int), Some(2));
        assert_eq!(stats.get("index_len").and_then(Json::as_int), Some(2));
        assert_eq!(stats.get("registered_audits").and_then(Json::as_int), Some(1));

        // Unregister, then the audit name is gone.
        let r = c.handle(Request::Unregister { name: "cancer".into() });
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)));
        let r = c.handle(Request::Audit { name: "cancer".into() });
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(false)));
    }

    /// Regression for the index-shift hazard: unregistering an audit used to
    /// shift every later audit down one slot, so subsequent ingests scored
    /// under the wrong registration. Stable ids must survive removal, both
    /// live and across crash recovery of a journal with unregister holes.
    #[test]
    fn unregister_then_ingest_scores_the_surviving_audit() {
        use audex_persist::{FsyncPolicy, WalOptions};

        let reg = |name: &str, zip: &str| Request::Register {
            name: name.into(),
            expr: format!(
                "DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 \
                 AUDIT disease FROM Patients WHERE zipcode = '{zip}'"
            ),
            now: Some(Timestamp(5000)),
        };
        let requests = |c: &mut ServiceCore| {
            c.handle(Request::Dml {
                ts: Timestamp(100),
                sql: "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT); \
                      INSERT INTO Patients VALUES ('p1', '120016', 'cancer'), \
                      ('p2', '145568', 'flu');"
                    .into(),
            });
            c.handle(reg("cancer", "120016"));
            c.handle(reg("flu", "145568"));
            c.handle(Request::Unregister { name: "cancer".into() });
        };

        let mut c = ServiceCore::new(Database::new(), ServiceConfig::default());
        requests(&mut c);
        let r = c.handle(log_req(200, "SELECT disease FROM Patients WHERE zipcode = '145568'"));
        let scores = r.response.get("scores").and_then(Json::as_arr).unwrap();
        assert_eq!(scores.len(), 1, "{}", r.response);
        assert_eq!(scores[0].get("audit"), Some(&Json::Str("flu".into())), "{}", r.response);
        assert_eq!(r.events[1].get("audit"), Some(&Json::Str("flu".into())));
        assert_eq!(r.events[1].get("suspicious"), Some(&Json::Bool(true)));
        let r = c.handle(Request::Audit { name: "flu".into() });
        assert_eq!(r.response.get("suspicious"), Some(&Json::Bool(true)), "{}", r.response);

        // Recovery replays register/unregister in journal order, so the
        // surviving audit keeps its id and the post-crash ingest scores it.
        let dir = std::env::temp_dir().join(format!("audex-unreg-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = WalOptions { fsync: FsyncPolicy::Always, segment_max_bytes: 4 * 1024 * 1024 };
        let (journal, _) = Journal::open(&dir, options).unwrap();
        let mut live = ServiceCore::new(Database::new(), ServiceConfig::default());
        live.attach_journal(journal);
        requests(&mut live);
        drop(live);

        let (journal, mut recovered) = Journal::open(&dir, WalOptions::default()).unwrap();
        let mut after = ServiceCore::recovered(&mut recovered, ServiceConfig::default()).unwrap();
        after.attach_journal(journal);
        let r = after.handle(log_req(200, "SELECT disease FROM Patients WHERE zipcode = '145568'"));
        let scores = r.response.get("scores").and_then(Json::as_arr).unwrap();
        assert_eq!(scores.len(), 1, "{}", r.response);
        assert_eq!(scores[0].get("audit"), Some(&Json::Str("flu".into())), "{}", r.response);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejections_leave_no_trace() {
        let mut c = core();
        // Bad SQL.
        let r = c.handle(log_req(200, "DELETE FROM Patients"));
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(false)));
        // Out of order after a good entry.
        c.handle(log_req(300, "SELECT pid FROM Patients"));
        let r = c.handle(log_req(250, "SELECT pid FROM Patients"));
        assert!(
            r.response.get("error").and_then(Json::as_str).unwrap().contains("out-of-order"),
            "{}",
            r.response
        );
        let stats = c.handle(Request::Stats).response;
        assert_eq!(stats.get("log_len").and_then(Json::as_int), Some(1));
        assert_eq!(stats.get("index_len").and_then(Json::as_int), Some(1));
        assert_eq!(stats.get("queries_rejected").and_then(Json::as_int), Some(2));
    }

    #[test]
    fn governor_trip_is_backpressure_not_corruption() {
        let mut c = core();
        c.config.limits =
            ResourceLimits { deadline: Some(Duration::ZERO), max_steps: None, granule_limit: None };
        let r = c.handle(log_req(200, "SELECT pid FROM Patients"));
        assert_eq!(r.response.get("busy"), Some(&Json::Bool(true)), "{}", r.response);
        // Nothing was mutated: lift the limit and the same entry ingests.
        c.config.limits = ResourceLimits::unlimited();
        let r = c.handle(log_req(200, "SELECT pid FROM Patients"));
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);
        let stats = c.handle(Request::Stats).response;
        assert_eq!(stats.get("governor_trips").and_then(Json::as_int), Some(1));
        assert_eq!(stats.get("log_len").and_then(Json::as_int), Some(1));
        assert_eq!(stats.get("index_len").and_then(Json::as_int), Some(1));
    }

    #[test]
    fn preloaded_log_builds_the_index_incrementally() {
        let db = {
            let c = core();
            c.db
        };
        let log = QueryLog::new();
        log.record_text(
            "SELECT disease FROM Patients",
            Timestamp(200),
            AccessContext::new("u", "r", "p"),
        )
        .unwrap();
        log.record_text("SELECT x FROM ghost", Timestamp(300), AccessContext::new("u", "r", "p"))
            .unwrap();
        let mut c = ServiceCore::preloaded(db, log, ServiceConfig::default()).unwrap();
        let stats = c.handle(Request::Stats).response;
        assert_eq!(stats.get("index_len").and_then(Json::as_int), Some(1));
        assert_eq!(stats.get("index_skipped").and_then(Json::as_int), Some(1));
        assert_eq!(stats.get("log_len").and_then(Json::as_int), Some(2));
    }

    #[test]
    fn recovery_rebuilds_identical_state_with_and_without_checkpoint() {
        use audex_persist::{FsyncPolicy, WalOptions};

        let dir = std::env::temp_dir().join(format!("audex-state-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let requests = |c: &mut ServiceCore| {
            c.handle(Request::Dml {
                ts: Timestamp(100),
                sql: "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT); \
                      INSERT INTO Patients VALUES ('p1', '120016', 'cancer'), \
                      ('p2', '145568', 'flu');"
                    .into(),
            });
            c.handle(Request::Register {
                name: "cancer".into(),
                expr: "DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 \
                       AUDIT disease FROM Patients WHERE zipcode = '120016'"
                    .into(),
                now: Some(Timestamp(5000)),
            });
            c.handle(log_req(200, "SELECT pid FROM Patients WHERE zipcode = '145568'"));
            c.handle(log_req(300, "SELECT disease FROM Patients WHERE zipcode = '120016'"));
            // Mid-stream DML: a recovered registration must still be
            // prepared against the *pre-DML* database, as the original was.
            c.handle(Request::Dml {
                ts: Timestamp(400),
                sql: "INSERT INTO Patients VALUES ('p3', '120016', 'cancer');".into(),
            });
            c.handle(log_req(500, "SELECT disease FROM Patients"));
        };

        // Reference: uninterrupted, journal-free run.
        let mut reference = ServiceCore::new(Database::new(), ServiceConfig::default());
        requests(&mut reference);
        let ref_audit = reference.handle(Request::Audit { name: "cancer".into() }).response;
        let ref_stats = reference.handle(Request::Stats).response;

        for checkpoint_mid_stream in [false, true] {
            let _ = std::fs::remove_dir_all(&dir);
            let options =
                WalOptions { fsync: FsyncPolicy::Always, segment_max_bytes: 4 * 1024 * 1024 };
            let (journal, _) = Journal::open(&dir, options).unwrap();
            let mut live = ServiceCore::new(Database::new(), ServiceConfig::default());
            live.attach_journal(journal);
            requests(&mut live);
            if checkpoint_mid_stream {
                live.checkpoint().unwrap();
                // Post-checkpoint tail.
                live.handle(log_req(600, "SELECT zipcode FROM Patients"));
                reference.handle(log_req(600, "SELECT zipcode FROM Patients"));
            }
            drop(live); // "crash": no shutdown, but fsync=always covered us

            let (journal, mut recovered) = Journal::open(&dir, WalOptions::default()).unwrap();
            if checkpoint_mid_stream {
                assert!(recovered.checkpoint.is_some());
                assert_eq!(recovered.tail.len(), 1);
            } else {
                assert!(recovered.checkpoint.is_none());
            }
            let mut after =
                ServiceCore::recovered(&mut recovered, ServiceConfig::default()).unwrap();
            after.attach_journal(journal);

            let audit = after.handle(Request::Audit { name: "cancer".into() }).response;
            let expect_audit = if checkpoint_mid_stream {
                reference.handle(Request::Audit { name: "cancer".into() }).response
            } else {
                ref_audit.clone()
            };
            assert_eq!(
                audit.to_string(),
                expect_audit.to_string(),
                "recovered audit report must be byte-identical (checkpoint={checkpoint_mid_stream})"
            );

            // Service counters (stats minus journal_* fields) match too.
            // `dml_statements` is exact only through a checkpoint: tail
            // replay counts change *records*, statement boundaries are not
            // journaled (documented caveat in DESIGN.md §10).
            let stats = after.handle(Request::Stats).response;
            let strip = |j: &Json| match j {
                Json::Obj(fields) => Json::Obj(
                    fields
                        .iter()
                        .filter(|(k, _)| {
                            // dispatch_* counters are telemetry: checkpoint
                            // recovery restores audit states without
                            // re-observing pre-checkpoint queries, so probe
                            // counts legitimately differ.
                            !k.starts_with("journal_")
                                && !k.starts_with("snapshot_")
                                && !k.starts_with("dispatch_")
                                && (checkpoint_mid_stream || k != "dml_statements")
                        })
                        .cloned()
                        .collect(),
                ),
                other => other.clone(),
            };
            let expect_stats = if checkpoint_mid_stream {
                reference.handle(Request::Stats).response
            } else {
                ref_stats.clone()
            };
            assert_eq!(strip(&stats).to_string(), strip(&expect_stats).to_string());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_registration_is_refused() {
        let mut c = core();
        let reg = Request::Register {
            name: "a".into(),
            expr: "AUDIT disease FROM Patients".into(),
            now: Some(Timestamp(5000)),
        };
        assert_eq!(c.handle(reg.clone()).response.get("ok"), Some(&Json::Bool(true)));
        let r = c.handle(reg);
        assert!(
            r.response.get("error").and_then(Json::as_str).unwrap().contains("already"),
            "{}",
            r.response
        );
    }

    fn register(c: &mut ServiceCore, name: &str, expr: &str) {
        let r = c.handle(Request::Register {
            name: name.into(),
            expr: format!(
                "DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 AUDIT {expr}"
            ),
            now: Some(Timestamp(5000)),
        });
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);
    }

    fn queue_ids(c: &mut ServiceCore) -> Vec<i64> {
        let q = c.handle(Request::Queue { top: None, offset: 0 }).response;
        q.get("items")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|i| i.get("query").and_then(Json::as_int).unwrap())
            .collect()
    }

    #[test]
    fn triage_queue_ranks_reviews_and_reweights() {
        let mut c = core();
        register(&mut c, "cancer", "disease FROM Patients WHERE zipcode = '120016'");
        register(&mut c, "zipfind", "pid FROM Patients WHERE zipcode = '145568'");
        c.handle(log_req(200, "SELECT disease FROM Patients WHERE pid = 'nobody'")); // innocent
        c.handle(log_req(300, "SELECT disease FROM Patients WHERE zipcode = '120016'")); // q2
        c.handle(log_req(400, "SELECT pid FROM Patients WHERE zipcode = '145568'")); // q3

        // Only the flagged queries entered the queue; equal suspicion ties
        // break on ascending query id.
        assert_eq!(queue_ids(&mut c), vec![2, 3]);
        let t = c.handle(Request::Triage).response;
        assert_eq!(t.get("open").and_then(Json::as_int), Some(2), "{t}");
        assert_eq!(t.get("templates").and_then(Json::as_arr).map(<[Json]>::len), Some(2), "{t}");

        // Items carry their evidence: audit names and covered columns.
        let q = c.handle(Request::Queue { top: None, offset: 0 }).response;
        let first = &q.get("items").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(first.get("audits"), Some(&Json::Arr(vec![Json::Str("cancer".into())])), "{q}");
        assert_eq!(
            first.get("columns"),
            Some(&Json::Arr(vec![Json::Str("Patients.disease".into())])),
            "{q}"
        );
        assert!(first.get("touched").and_then(Json::as_int).unwrap() > 0, "{q}");

        // A sensitivity weight on pid (covered only by q3) promotes it
        // past q2.
        let r = c.handle(Request::Weight {
            table: "Patients".into(),
            column: Some("pid".into()),
            weight: 5.0,
        });
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);
        assert_eq!(queue_ids(&mut c), vec![3, 2]);

        // Ack and dismiss retire items from the ranked view but keep their
        // counts; unknown ids are refused.
        let r = c.handle(Request::Ack { query: 3 });
        assert_eq!(r.response.get("state"), Some(&Json::from("acked")), "{}", r.response);
        assert_eq!(queue_ids(&mut c), vec![2]);
        c.handle(Request::Dismiss { query: 2 });
        assert_eq!(queue_ids(&mut c), Vec::<i64>::new());
        let r = c.handle(Request::Ack { query: 99 });
        assert!(
            r.response.get("error").and_then(Json::as_str).unwrap().contains("never flagged"),
            "{}",
            r.response
        );
        let stats = c.handle(Request::Stats).response;
        assert_eq!(stats.get("triage_open").and_then(Json::as_int), Some(0));
        assert_eq!(stats.get("triage_acked").and_then(Json::as_int), Some(1));
        assert_eq!(stats.get("triage_dismissed").and_then(Json::as_int), Some(1));
    }

    /// Template-wide acknowledgement retires every open item sharing the
    /// mined template in one request, journals one record, and survives
    /// crash recovery; a template index with no open items is refused.
    #[test]
    fn bulk_ack_retires_template_and_survives_recovery() {
        use audex_persist::WalOptions;

        let dir = std::env::temp_dir().join(format!("audex-state-bulkack-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig::default();
        let (journal, _) = Journal::open(&dir, WalOptions::default()).unwrap();
        let mut live = ServiceCore::new(Database::new(), config);
        live.attach_journal(journal);
        live.handle(Request::Dml {
            ts: Timestamp(100),
            sql: "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT); \
                  INSERT INTO Patients VALUES ('p1', '120016', 'cancer'), \
                  ('p2', '145568', 'flu');"
                .into(),
        });
        register(&mut live, "cancer", "disease FROM Patients WHERE zipcode = '120016'");
        register(&mut live, "zipfind", "pid FROM Patients WHERE zipcode = '145568'");
        // Two queries share the cancer template; one lands in zipfind's.
        live.handle(log_req(200, "SELECT disease FROM Patients WHERE zipcode = '120016'"));
        live.handle(log_req(300, "SELECT disease FROM Patients WHERE zipcode = '120016'"));
        live.handle(log_req(400, "SELECT pid FROM Patients WHERE zipcode = '145568'"));
        assert_eq!(queue_ids(&mut live).len(), 3);

        // Templates rank by open count, so the two-query template is 0.
        let r = live.handle(Request::AckTemplate { template: 0 }).response;
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
        assert_eq!(r.get("acked").and_then(Json::as_int), Some(2), "{r}");
        assert_eq!(r.get("queries"), Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)])), "{r}");
        assert_eq!(queue_ids(&mut live), vec![3]);

        // Indexes are mined from the *open* listing; a stale or absent one
        // is refused rather than acking whatever now sits at that slot.
        let r = live.handle(Request::AckTemplate { template: 7 }).response;
        assert!(r.get("error").and_then(Json::as_str).unwrap().contains("no open items"), "{r}");

        let live_queue = live.handle(Request::Queue { top: None, offset: 0 }).response.to_string();
        let live_triage = live.handle(Request::Triage).response.to_string();
        drop(live); // crash

        let (journal, mut recovered) = Journal::open(&dir, WalOptions::default()).unwrap();
        let mut after = ServiceCore::recovered(&mut recovered, config).unwrap();
        after.attach_journal(journal);
        assert_eq!(
            after.handle(Request::Queue { top: None, offset: 0 }).response.to_string(),
            live_queue
        );
        assert_eq!(after.handle(Request::Triage).response.to_string(), live_triage);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Does any file under `dir` contain `needle`? Used to prove the WAL
    /// holds no raw SQL under `--redact-log`.
    fn dir_contains(dir: &std::path::Path, needle: &[u8]) -> bool {
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let p = entry.unwrap().path();
                if p.is_dir() {
                    stack.push(p);
                } else if std::fs::read(&p).unwrap().windows(needle.len()).any(|w| w == needle) {
                    return true;
                }
            }
        }
        false
    }

    /// Redacted mode: the WAL never sees query text, yet crash recovery
    /// rebuilds the review queue (states, weights, ranking) byte-identically
    /// from the structural records — and a post-recovery `audit` honestly
    /// reports the redacted queries as skipped instead of re-auditing
    /// placeholders.
    #[test]
    fn redacted_recovery_rebuilds_queue_and_reports_skipped() {
        use audex_persist::{FsyncPolicy, WalOptions};

        let dir = std::env::temp_dir().join(format!("audex-state-redact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config =
            ServiceConfig { redact_log: true, review_budget: Some(5), ..ServiceConfig::default() };
        let options = WalOptions { fsync: FsyncPolicy::Always, segment_max_bytes: 4 * 1024 * 1024 };
        let (journal, _) = Journal::open(&dir, options).unwrap();
        let mut live = ServiceCore::new(Database::new(), config);
        live.attach_journal(journal);
        live.handle(Request::Dml {
            ts: Timestamp(100),
            sql: "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT); \
                  INSERT INTO Patients VALUES ('p1', '120016', 'cancer'), \
                  ('p2', '145568', 'flu');"
                .into(),
        });
        register(&mut live, "cancer", "disease FROM Patients WHERE zipcode = '120016'");
        live.handle(log_req(200, "SELECT pid FROM Patients WHERE zipcode = '145568'"));
        live.handle(log_req(300, "SELECT disease FROM Patients WHERE zipcode = '120016'"));
        live.handle(log_req(400, "SELECT disease FROM Patients"));
        live.handle(Request::Ack { query: 2 });
        live.handle(Request::Weight { table: "Patients".into(), column: None, weight: 2.0 });
        let live_queue = live.handle(Request::Queue { top: None, offset: 0 }).response.to_string();
        let live_triage = live.handle(Request::Triage).response.to_string();
        drop(live); // crash

        // No query text on disk (DML and audit expressions are not SELECTs).
        assert!(!dir_contains(&dir, b"SELECT"), "raw SQL leaked into the WAL");

        let (journal, mut recovered) = Journal::open(&dir, WalOptions::default()).unwrap();
        let mut after = ServiceCore::recovered(&mut recovered, config).unwrap();
        after.attach_journal(journal);
        assert_eq!(
            after.handle(Request::Queue { top: None, offset: 0 }).response.to_string(),
            live_queue
        );
        assert_eq!(after.handle(Request::Triage).response.to_string(), live_triage);

        // Batch re-audit of the redacted span is impossible by design; the
        // verdict says so instead of silently auditing placeholders.
        let audit = after.handle(Request::Audit { name: "cancer".into() }).response;
        let skipped = audit.get("skipped").and_then(Json::as_arr).unwrap();
        assert!(!skipped.is_empty(), "{audit}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
