//! Terminal rendering for triage responses.
//!
//! `audex send` prints a `queue` response as an aligned table when stdout
//! is a TTY (the raw JSON line otherwise), mirroring the `list-tenants`
//! table in [`crate::tenant::render_tenant_table`]. The renderer is pure
//! string work over the wire JSON so the CLI and tests share one code
//! path.

use crate::json::Json;

/// Renders a `queue` response as the aligned top-K table `audex send`
/// prints on a terminal. Non-queue shapes (including errors) fall back to
/// the JSON line itself.
pub fn render_queue_table(response: &Json) -> String {
    let Some(rows) = response.get("items").and_then(Json::as_arr) else {
        return format!("{response}\n");
    };
    let offset = response.get("offset").and_then(Json::as_int).unwrap_or(0);
    let total = response.get("total_open").and_then(Json::as_int).unwrap_or(0);
    let mut table: Vec<[String; 7]> = vec![[
        "#".into(),
        "QUERY".into(),
        "PRIORITY".into(),
        "SUSPICION".into(),
        "USER".into(),
        "AUDITS".into(),
        "COLUMNS".into(),
    ]];
    for (i, row) in rows.iter().enumerate() {
        let query = row
            .get("query")
            .and_then(Json::as_int)
            .map_or_else(|| "?".to_string(), |q| format!("q{q}"));
        let score = |key: &str| match row.get(key) {
            Some(Json::Float(v)) => format!("{v:.4}"),
            Some(Json::Int(v)) => format!("{v}.0000"),
            _ => "-".to_string(),
        };
        let names = |key: &str| {
            row.get(key)
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_str).collect::<Vec<_>>().join(","))
                .unwrap_or_default()
        };
        table.push([
            (offset + i as i64 + 1).to_string(),
            query,
            score("priority"),
            score("suspicion"),
            row.get("user").and_then(Json::as_str).unwrap_or("?").to_string(),
            names("audits"),
            names("columns"),
        ]);
    }
    let mut widths = [0usize; 7];
    for row in &table {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &table {
        let mut line = String::new();
        for (i, (cell, width)) in row.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            if i + 1 < row.len() {
                line.push_str(&" ".repeat(width - cell.len()));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    let shown = rows.len();
    out.push_str(&format!("{shown} shown (offset {offset}) of {total} open\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows_with_footer() {
        let response = Json::parse(
            r#"{"ok":true,"total_open":3,"offset":1,"items":[
                {"query":7,"priority":1.5,"suspicion":0.75,"user":"mallory",
                 "audits":["cancer","hiv"],"columns":["Patients.disease"]},
                {"query":12,"priority":0.25,"suspicion":0.25,"user":"bob",
                 "audits":["cancer"],"columns":[]}]}"#,
        )
        .unwrap();
        let table = render_queue_table(&response);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "{table}");
        assert!(lines[0].starts_with("#  QUERY  PRIORITY  SUSPICION  USER"), "{table}");
        assert!(lines[1].contains("q7") && lines[1].contains("1.5000"), "{table}");
        assert!(lines[2].contains("q12") && lines[2].contains("0.2500"), "{table}");
        // Ranks continue from the page offset.
        assert!(lines[1].starts_with('2') && lines[2].starts_with('3'), "{table}");
        assert_eq!(lines[3], "2 shown (offset 1) of 3 open");
        // Every data row's USER column starts at the same byte offset.
        let col = lines[0].find("USER").unwrap();
        assert_eq!(&lines[1][col..col + 7], "mallory");
        assert_eq!(&lines[2][col..col + 3], "bob");
    }

    #[test]
    fn non_queue_shapes_fall_back_to_json() {
        let err = Json::parse(r#"{"ok":false,"error":"nope"}"#).unwrap();
        assert_eq!(render_queue_table(&err), format!("{err}\n"));
    }
}
