//! The `audexd` wire protocol: one JSON object per line, in both
//! directions.
//!
//! # Requests
//!
//! Every request carries a `"cmd"` field; timestamps accept either raw
//! seconds or the session-file string forms (`D/M/YYYY[:HH-MM-SS]`,
//! quoted ISO) — the same parser the `audex` CLI uses for `@` headers.
//!
//! ```text
//! {"cmd":"dml","ts":"1/1/2008","sql":"INSERT INTO t VALUES (1);"}
//! {"cmd":"log","ts":"2/1/2008:09-30-00","user":"u-4","role":"nurse","purpose":"treatment","sql":"SELECT ..."}
//! {"cmd":"register","name":"fig4","expr":"AUDIT disease FROM Patients ..."}
//! {"cmd":"unregister","name":"fig4"}
//! {"cmd":"audit","name":"fig4"}
//! {"cmd":"subscribe"}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"shutdown"}
//! ```
//!
//! # Triage
//!
//! The review-queue workflow over flagged queries (see `audex_triage`):
//!
//! ```text
//! {"cmd":"triage"}
//! {"cmd":"queue","top":5,"offset":0}
//! {"cmd":"ack","query":12}
//! {"cmd":"dismiss","query":9}
//! {"cmd":"weight","table":"Patients","column":"disease","weight":5.0}
//! ```
//!
//! `triage` summarizes the queue (state counts, mined explanation
//! templates, compression ratio); `queue` pages the ranked open items
//! (`top` defaults to the server's `--review-budget`, then 10); `ack` /
//! `dismiss` journal a review decision; `weight` sets a per-table (omit
//! `column`) or per-column sensitivity weight used in ranking.
//!
//! # Tenancy
//!
//! Every request may additionally carry a `"tenant"` field naming the
//! org-scoped shard it addresses (see [`crate::tenant`]); requests without
//! one go to the service's default tenant, which is what keeps every
//! pre-tenancy client working unchanged. Tenant administration and
//! fleet-wide operations are their own commands:
//!
//! ```text
//! {"cmd":"log","tenant":"mercy-west","ts":200,"user":"u-4","role":"nurse","purpose":"treatment","sql":"SELECT ..."}
//! {"cmd":"create-tenant","name":"mercy-west"}
//! {"cmd":"drop-tenant","name":"mercy-west"}
//! {"cmd":"list-tenants"}
//! {"cmd":"audit","name":"fig4","all_tenants":true}
//! {"cmd":"stats","all_tenants":true}
//! {"cmd":"metrics","all_tenants":true}
//! ```
//!
//! `"all_tenants":true` turns `audit`/`stats`/`metrics` into a fleet
//! fan-out (per-tenant rows, one response line); on those three the
//! `"tenant"` field is ignored. `subscribe` attaches the connection to the
//! event stream of the tenant it names (default tenant when absent).
//!
//! # Responses and events
//!
//! Every request gets exactly one response line with an `"ok"` field.
//! Rejections carry `"error"`; governor trips additionally carry
//! `"busy":true` — the client should back off and retry. Connections that
//! sent `subscribe` also receive `{"event":...}` lines (scores and verdict
//! updates) as queries are ingested; events never interleave into the
//! middle of a response line.

use audex_sql::Timestamp;

use crate::json::Json;

/// One parsed request line: the tenant it addresses (`None` = the default
/// tenant) plus the request itself. The tenant rides outside [`Request`]
/// so the per-shard state machine stays tenant-blind — a shard handles
/// exactly what a single-tenant service would.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The `"tenant"` field, if the line carried one (unvalidated text;
    /// the shard map validates and resolves it).
    pub tenant: Option<String>,
    /// The request proper.
    pub req: Request,
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply timestamped DML, advancing the versioned backlog.
    Dml {
        /// Execution instant of the first statement; each further
        /// statement in `sql` advances the clock by one second, like a
        /// session script block.
        ts: Timestamp,
        /// One or more `;`-separated DML statements.
        sql: String,
    },
    /// Append one annotated query to the access log and score it.
    Log {
        /// Execution instant (must be ≥ the newest logged entry).
        ts: Timestamp,
        /// Submitting user id.
        user: String,
        /// Role acted under.
        role: String,
        /// Declared purpose.
        purpose: String,
        /// The SELECT text.
        sql: String,
    },
    /// Register a standing audit expression under a name.
    Register {
        /// Name for later `audit` / `unregister` calls.
        name: String,
        /// The audit-expression text (paper Fig. 7 grammar).
        expr: String,
        /// Reference "now" for `now()` and interval defaults; defaults to
        /// the latest instant the service has seen.
        now: Option<Timestamp>,
    },
    /// Drop a standing audit expression.
    Unregister {
        /// The name it was registered under.
        name: String,
    },
    /// Evaluate a standing audit from the touch index (no log re-run).
    Audit {
        /// The name it was registered under.
        name: String,
    },
    /// Subscribe this connection to score/verdict events.
    Subscribe,
    /// Service counters.
    Stats,
    /// The metrics registry as Prometheus text exposition.
    Metrics,
    /// Stop the service.
    Shutdown,
    /// Create a new tenant shard (fleet control plane).
    CreateTenant {
        /// Tenant name; becomes the `tenants/<name>/` journal directory.
        name: String,
    },
    /// Detach a tenant shard and retire its journal directory.
    DropTenant {
        /// The tenant to drop.
        name: String,
    },
    /// Enumerate tenant shards with per-shard summaries.
    ListTenants,
    /// `stats` fanned out across every tenant shard.
    StatsAll,
    /// `metrics` aggregated across every tenant shard.
    MetricsAll,
    /// Evaluate one named standing audit on every tenant that has it.
    AuditAll {
        /// The audit name to look up per tenant.
        name: String,
    },
    /// Summarize the review queue: state counts, mined explanation
    /// templates, compression ratio.
    Triage,
    /// One page of the ranked review queue.
    Queue {
        /// Page size; defaults to the server's review budget, then 10.
        top: Option<u64>,
        /// Ranked items to skip before the page starts.
        offset: u64,
    },
    /// Acknowledge a flagged query as a real concern.
    Ack {
        /// The flagged query's id.
        query: u64,
    },
    /// Acknowledge every open item matching one mined template (by its
    /// index in the `triage` listing) in a single journaled decision.
    AckTemplate {
        /// Zero-based index into the current template ordering.
        template: u64,
    },
    /// Dismiss a flagged query as benign.
    Dismiss {
        /// The flagged query's id.
        query: u64,
    },
    /// Set a triage sensitivity weight for ranking.
    Weight {
        /// The weighted table.
        table: String,
        /// The weighted column; `None` weights the whole table.
        column: Option<String>,
        /// The weight value (default sensitivity is 1.0).
        weight: f64,
    },
}

impl Request {
    /// The wire command name, as the `cmd` label of the per-request
    /// latency histogram.
    pub fn cmd_name(&self) -> &'static str {
        match self {
            Request::Dml { .. } => "dml",
            Request::Log { .. } => "log",
            Request::Register { .. } => "register",
            Request::Unregister { .. } => "unregister",
            Request::Audit { .. } => "audit",
            Request::Subscribe => "subscribe",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
            Request::CreateTenant { .. } => "create-tenant",
            Request::DropTenant { .. } => "drop-tenant",
            Request::ListTenants => "list-tenants",
            Request::StatsAll => "stats-all",
            Request::MetricsAll => "metrics-all",
            Request::AuditAll { .. } => "audit-all",
            Request::Triage => "triage",
            Request::Queue { .. } => "queue",
            Request::Ack { .. } => "ack",
            Request::AckTemplate { .. } => "ack",
            Request::Dismiss { .. } => "dismiss",
            Request::Weight { .. } => "weight",
        }
    }

    /// True for the fleet-scoped commands a single-tenant
    /// [`crate::ServiceCore`] cannot answer by itself.
    pub fn is_fleet_op(&self) -> bool {
        matches!(
            self,
            Request::CreateTenant { .. }
                | Request::DropTenant { .. }
                | Request::ListTenants
                | Request::StatsAll
                | Request::MetricsAll
                | Request::AuditAll { .. }
        )
    }
}

/// Parses one request line, ignoring any tenant addressing. Single-tenant
/// embedders (and most tests) use this; transports that route between
/// shards use [`parse_envelope`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_envelope(line).map(|env| env.req)
}

/// Parses one request line into its tenant address and request.
pub fn parse_envelope(line: &str) -> Result<Envelope, String> {
    let v = Json::parse(line)?;
    let cmd =
        v.get("cmd").and_then(Json::as_str).ok_or_else(|| "missing \"cmd\" field".to_string())?;
    let need = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{cmd}: missing string field {key:?}"))
    };
    let tenant = match v.get("tenant") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(format!("{cmd}: \"tenant\" must be a string")),
    };
    let all_tenants = match v.get("all_tenants") {
        None | Some(Json::Null) | Some(Json::Bool(false)) => false,
        Some(Json::Bool(true)) => true,
        Some(_) => return Err(format!("{cmd}: \"all_tenants\" must be a boolean")),
    };
    let req = match cmd {
        "dml" => Request::Dml { ts: need_ts(&v, "ts")?, sql: need("sql")? },
        "log" => Request::Log {
            ts: need_ts(&v, "ts")?,
            user: need("user")?,
            role: need("role")?,
            purpose: need("purpose")?,
            sql: need("sql")?,
        },
        "register" => Request::Register {
            name: need("name")?,
            expr: need("expr")?,
            now: match v.get("now") {
                None | Some(Json::Null) => None,
                Some(_) => Some(need_ts(&v, "now")?),
            },
        },
        "unregister" => Request::Unregister { name: need("name")? },
        "audit" if all_tenants => Request::AuditAll { name: need("name")? },
        "audit" => Request::Audit { name: need("name")? },
        "subscribe" => Request::Subscribe,
        "stats" if all_tenants => Request::StatsAll,
        "stats" => Request::Stats,
        "metrics" if all_tenants => Request::MetricsAll,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        "create-tenant" => Request::CreateTenant { name: need("name")? },
        "drop-tenant" => Request::DropTenant { name: need("name")? },
        "list-tenants" => Request::ListTenants,
        "triage" => Request::Triage,
        "queue" => Request::Queue {
            top: match v.get("top") {
                None | Some(Json::Null) => None,
                Some(t) => Some(
                    t.as_int()
                        .filter(|n| *n >= 0)
                        .map(|n| n as u64)
                        .ok_or_else(|| format!("{cmd}: \"top\" must be a non-negative integer"))?,
                ),
            },
            offset: match v.get("offset") {
                None | Some(Json::Null) => 0,
                Some(o) => {
                    o.as_int().filter(|n| *n >= 0).map(|n| n as u64).ok_or_else(|| {
                        format!("{cmd}: \"offset\" must be a non-negative integer")
                    })?
                }
            },
        },
        "ack" => match (v.get("query"), v.get("template")) {
            (Some(_), Some(_)) => {
                return Err(format!("{cmd}: \"query\" and \"template\" are mutually exclusive"))
            }
            (None, Some(_)) => Request::AckTemplate { template: need_index(&v, cmd, "template")? },
            _ => Request::Ack { query: need_query(&v, cmd)? },
        },
        "dismiss" => Request::Dismiss { query: need_query(&v, cmd)? },
        "weight" => Request::Weight {
            table: need("table")?,
            column: match v.get("column") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(format!("{cmd}: \"column\" must be a string")),
            },
            weight: v
                .get("weight")
                .and_then(Json::as_f64)
                .filter(|w| w.is_finite() && *w >= 0.0)
                .ok_or_else(|| format!("{cmd}: \"weight\" must be a non-negative number"))?,
        },
        other => return Err(format!("unknown command {other:?}")),
    };
    Ok(Envelope { tenant, req })
}

/// Reads a non-negative integer field (a template index).
fn need_index(v: &Json, cmd: &str, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_int)
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("{cmd}: {key:?} must be a non-negative integer"))
}

/// Reads the `"query"` field of a review decision: a non-negative integer
/// query id.
fn need_query(v: &Json, cmd: &str) -> Result<u64, String> {
    v.get("query")
        .and_then(Json::as_int)
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("{cmd}: \"query\" must be a non-negative integer"))
}

/// Reads a timestamp field: raw seconds, or any string form the session
/// `@` headers accept.
fn need_ts(v: &Json, key: &str) -> Result<Timestamp, String> {
    let field = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
    match field {
        Json::Int(i) => Ok(Timestamp(*i)),
        Json::Str(s) => {
            let trimmed = s.trim().trim_matches('\'');
            Timestamp::parse(trimmed).ok_or_else(|| format!("{key}: invalid timestamp {s:?}"))
        }
        _ => Err(format!("{key}: expected seconds or a timestamp string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let r = parse_request(r#"{"cmd":"dml","ts":100,"sql":"INSERT INTO t VALUES (1);"}"#);
        assert_eq!(
            r.unwrap(),
            Request::Dml { ts: Timestamp(100), sql: "INSERT INTO t VALUES (1);".into() }
        );
        let r = parse_request(
            r#"{"cmd":"log","ts":"1/1/2008","user":"u","role":"r","purpose":"p","sql":"SELECT a FROM t"}"#,
        )
        .unwrap();
        match r {
            Request::Log { ts, user, .. } => {
                assert_eq!(ts, Timestamp::from_ymd(2008, 1, 1).unwrap());
                assert_eq!(user, "u");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"cmd":"register","name":"a","expr":"AUDIT x FROM t"}"#).unwrap(),
            Request::Register { name: "a".into(), expr: "AUDIT x FROM t".into(), now: None }
        );
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#).unwrap(), Request::Metrics);
        assert_eq!(Request::Metrics.cmd_name(), "metrics");
        assert_eq!(parse_request(r#"{"cmd":"subscribe"}"#).unwrap(), Request::Subscribe);
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn envelopes_carry_tenant_and_fleet_flags() {
        let env = parse_envelope(r#"{"cmd":"stats","tenant":"acme"}"#).unwrap();
        assert_eq!(env.tenant.as_deref(), Some("acme"));
        assert_eq!(env.req, Request::Stats);
        // Absent / null tenant means the default shard.
        assert_eq!(parse_envelope(r#"{"cmd":"stats"}"#).unwrap().tenant, None);
        assert_eq!(parse_envelope(r#"{"cmd":"stats","tenant":null}"#).unwrap().tenant, None);
        // all_tenants lifts audit/stats/metrics to their fleet forms.
        assert_eq!(
            parse_envelope(r#"{"cmd":"audit","name":"a","all_tenants":true}"#).unwrap().req,
            Request::AuditAll { name: "a".into() }
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"stats","all_tenants":true}"#).unwrap().req,
            Request::StatsAll
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"metrics","all_tenants":true}"#).unwrap().req,
            Request::MetricsAll
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"metrics","all_tenants":false}"#).unwrap().req,
            Request::Metrics
        );
        // Tenant administration commands.
        assert_eq!(
            parse_envelope(r#"{"cmd":"create-tenant","name":"acme"}"#).unwrap().req,
            Request::CreateTenant { name: "acme".into() }
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"drop-tenant","name":"acme"}"#).unwrap().req,
            Request::DropTenant { name: "acme".into() }
        );
        assert_eq!(parse_envelope(r#"{"cmd":"list-tenants"}"#).unwrap().req, Request::ListTenants);
        assert!(Request::ListTenants.is_fleet_op());
        assert!(!Request::Stats.is_fleet_op());
        assert_eq!(Request::StatsAll.cmd_name(), "stats-all");
        // Malformed addressing is rejected with the offending field named.
        assert!(parse_envelope(r#"{"cmd":"stats","tenant":7}"#).unwrap_err().contains("tenant"));
        assert!(parse_envelope(r#"{"cmd":"stats","all_tenants":"yes"}"#)
            .unwrap_err()
            .contains("all_tenants"));
    }

    #[test]
    fn parses_triage_commands() {
        assert_eq!(parse_request(r#"{"cmd":"triage"}"#).unwrap(), Request::Triage);
        assert_eq!(
            parse_request(r#"{"cmd":"queue"}"#).unwrap(),
            Request::Queue { top: None, offset: 0 }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"queue","top":5,"offset":10}"#).unwrap(),
            Request::Queue { top: Some(5), offset: 10 }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"ack","query":12}"#).unwrap(),
            Request::Ack { query: 12 }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"dismiss","query":9}"#).unwrap(),
            Request::Dismiss { query: 9 }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"ack","template":0}"#).unwrap(),
            Request::AckTemplate { template: 0 }
        );
        assert!(parse_request(r#"{"cmd":"ack","template":-1}"#).unwrap_err().contains("template"));
        assert!(parse_request(r#"{"cmd":"ack","query":1,"template":0}"#)
            .unwrap_err()
            .contains("mutually exclusive"));
        assert_eq!(Request::AckTemplate { template: 0 }.cmd_name(), "ack");
        assert!(!Request::AckTemplate { template: 0 }.is_fleet_op());
        assert_eq!(
            parse_request(r#"{"cmd":"weight","table":"Patients","column":"disease","weight":5}"#)
                .unwrap(),
            Request::Weight {
                table: "Patients".into(),
                column: Some("disease".into()),
                weight: 5.0
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"weight","table":"Patients","weight":2.5}"#).unwrap(),
            Request::Weight { table: "Patients".into(), column: None, weight: 2.5 }
        );
        // Triage commands are per-tenant data-plane ops, not fleet ops.
        assert!(!Request::Triage.is_fleet_op());
        assert!(!Request::Queue { top: None, offset: 0 }.is_fleet_op());
        assert_eq!(Request::Ack { query: 1 }.cmd_name(), "ack");
        // Malformed fields are named.
        assert!(parse_request(r#"{"cmd":"ack","query":-1}"#).unwrap_err().contains("query"));
        assert!(parse_request(r#"{"cmd":"queue","top":-2}"#).unwrap_err().contains("top"));
        assert!(parse_request(r#"{"cmd":"weight","table":"t","weight":-1}"#)
            .unwrap_err()
            .contains("weight"));
        assert!(parse_request(r#"{"cmd":"weight","table":"t","column":3,"weight":1}"#)
            .unwrap_err()
            .contains("column"));
    }

    #[test]
    fn bad_requests_name_the_problem() {
        assert!(parse_request("not json").unwrap_err().contains("byte"));
        assert!(parse_request(r#"{"ts":1}"#).unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":"fly"}"#).unwrap_err().contains("unknown command"));
        assert!(parse_request(r#"{"cmd":"dml","ts":"soon","sql":"x"}"#)
            .unwrap_err()
            .contains("invalid timestamp"));
        assert!(parse_request(r#"{"cmd":"log","ts":1,"sql":"x"}"#).unwrap_err().contains("user"));
    }
}
