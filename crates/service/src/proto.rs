//! The `audexd` wire protocol: one JSON object per line, in both
//! directions.
//!
//! # Requests
//!
//! Every request carries a `"cmd"` field; timestamps accept either raw
//! seconds or the session-file string forms (`D/M/YYYY[:HH-MM-SS]`,
//! quoted ISO) — the same parser the `audex` CLI uses for `@` headers.
//!
//! ```text
//! {"cmd":"dml","ts":"1/1/2008","sql":"INSERT INTO t VALUES (1);"}
//! {"cmd":"log","ts":"2/1/2008:09-30-00","user":"u-4","role":"nurse","purpose":"treatment","sql":"SELECT ..."}
//! {"cmd":"register","name":"fig4","expr":"AUDIT disease FROM Patients ..."}
//! {"cmd":"unregister","name":"fig4"}
//! {"cmd":"audit","name":"fig4"}
//! {"cmd":"subscribe"}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"shutdown"}
//! ```
//!
//! # Tenancy
//!
//! Every request may additionally carry a `"tenant"` field naming the
//! org-scoped shard it addresses (see [`crate::tenant`]); requests without
//! one go to the service's default tenant, which is what keeps every
//! pre-tenancy client working unchanged. Tenant administration and
//! fleet-wide operations are their own commands:
//!
//! ```text
//! {"cmd":"log","tenant":"mercy-west","ts":200,"user":"u-4","role":"nurse","purpose":"treatment","sql":"SELECT ..."}
//! {"cmd":"create-tenant","name":"mercy-west"}
//! {"cmd":"drop-tenant","name":"mercy-west"}
//! {"cmd":"list-tenants"}
//! {"cmd":"audit","name":"fig4","all_tenants":true}
//! {"cmd":"stats","all_tenants":true}
//! {"cmd":"metrics","all_tenants":true}
//! ```
//!
//! `"all_tenants":true` turns `audit`/`stats`/`metrics` into a fleet
//! fan-out (per-tenant rows, one response line); on those three the
//! `"tenant"` field is ignored. `subscribe` attaches the connection to the
//! event stream of the tenant it names (default tenant when absent).
//!
//! # Responses and events
//!
//! Every request gets exactly one response line with an `"ok"` field.
//! Rejections carry `"error"`; governor trips additionally carry
//! `"busy":true` — the client should back off and retry. Connections that
//! sent `subscribe` also receive `{"event":...}` lines (scores and verdict
//! updates) as queries are ingested; events never interleave into the
//! middle of a response line.

use audex_sql::Timestamp;

use crate::json::Json;

/// One parsed request line: the tenant it addresses (`None` = the default
/// tenant) plus the request itself. The tenant rides outside [`Request`]
/// so the per-shard state machine stays tenant-blind — a shard handles
/// exactly what a single-tenant service would.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The `"tenant"` field, if the line carried one (unvalidated text;
    /// the shard map validates and resolves it).
    pub tenant: Option<String>,
    /// The request proper.
    pub req: Request,
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply timestamped DML, advancing the versioned backlog.
    Dml {
        /// Execution instant of the first statement; each further
        /// statement in `sql` advances the clock by one second, like a
        /// session script block.
        ts: Timestamp,
        /// One or more `;`-separated DML statements.
        sql: String,
    },
    /// Append one annotated query to the access log and score it.
    Log {
        /// Execution instant (must be ≥ the newest logged entry).
        ts: Timestamp,
        /// Submitting user id.
        user: String,
        /// Role acted under.
        role: String,
        /// Declared purpose.
        purpose: String,
        /// The SELECT text.
        sql: String,
    },
    /// Register a standing audit expression under a name.
    Register {
        /// Name for later `audit` / `unregister` calls.
        name: String,
        /// The audit-expression text (paper Fig. 7 grammar).
        expr: String,
        /// Reference "now" for `now()` and interval defaults; defaults to
        /// the latest instant the service has seen.
        now: Option<Timestamp>,
    },
    /// Drop a standing audit expression.
    Unregister {
        /// The name it was registered under.
        name: String,
    },
    /// Evaluate a standing audit from the touch index (no log re-run).
    Audit {
        /// The name it was registered under.
        name: String,
    },
    /// Subscribe this connection to score/verdict events.
    Subscribe,
    /// Service counters.
    Stats,
    /// The metrics registry as Prometheus text exposition.
    Metrics,
    /// Stop the service.
    Shutdown,
    /// Create a new tenant shard (fleet control plane).
    CreateTenant {
        /// Tenant name; becomes the `tenants/<name>/` journal directory.
        name: String,
    },
    /// Detach a tenant shard and retire its journal directory.
    DropTenant {
        /// The tenant to drop.
        name: String,
    },
    /// Enumerate tenant shards with per-shard summaries.
    ListTenants,
    /// `stats` fanned out across every tenant shard.
    StatsAll,
    /// `metrics` aggregated across every tenant shard.
    MetricsAll,
    /// Evaluate one named standing audit on every tenant that has it.
    AuditAll {
        /// The audit name to look up per tenant.
        name: String,
    },
}

impl Request {
    /// The wire command name, as the `cmd` label of the per-request
    /// latency histogram.
    pub fn cmd_name(&self) -> &'static str {
        match self {
            Request::Dml { .. } => "dml",
            Request::Log { .. } => "log",
            Request::Register { .. } => "register",
            Request::Unregister { .. } => "unregister",
            Request::Audit { .. } => "audit",
            Request::Subscribe => "subscribe",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
            Request::CreateTenant { .. } => "create-tenant",
            Request::DropTenant { .. } => "drop-tenant",
            Request::ListTenants => "list-tenants",
            Request::StatsAll => "stats-all",
            Request::MetricsAll => "metrics-all",
            Request::AuditAll { .. } => "audit-all",
        }
    }

    /// True for the fleet-scoped commands a single-tenant
    /// [`crate::ServiceCore`] cannot answer by itself.
    pub fn is_fleet_op(&self) -> bool {
        matches!(
            self,
            Request::CreateTenant { .. }
                | Request::DropTenant { .. }
                | Request::ListTenants
                | Request::StatsAll
                | Request::MetricsAll
                | Request::AuditAll { .. }
        )
    }
}

/// Parses one request line, ignoring any tenant addressing. Single-tenant
/// embedders (and most tests) use this; transports that route between
/// shards use [`parse_envelope`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_envelope(line).map(|env| env.req)
}

/// Parses one request line into its tenant address and request.
pub fn parse_envelope(line: &str) -> Result<Envelope, String> {
    let v = Json::parse(line)?;
    let cmd =
        v.get("cmd").and_then(Json::as_str).ok_or_else(|| "missing \"cmd\" field".to_string())?;
    let need = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{cmd}: missing string field {key:?}"))
    };
    let tenant = match v.get("tenant") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(format!("{cmd}: \"tenant\" must be a string")),
    };
    let all_tenants = match v.get("all_tenants") {
        None | Some(Json::Null) | Some(Json::Bool(false)) => false,
        Some(Json::Bool(true)) => true,
        Some(_) => return Err(format!("{cmd}: \"all_tenants\" must be a boolean")),
    };
    let req = match cmd {
        "dml" => Request::Dml { ts: need_ts(&v, "ts")?, sql: need("sql")? },
        "log" => Request::Log {
            ts: need_ts(&v, "ts")?,
            user: need("user")?,
            role: need("role")?,
            purpose: need("purpose")?,
            sql: need("sql")?,
        },
        "register" => Request::Register {
            name: need("name")?,
            expr: need("expr")?,
            now: match v.get("now") {
                None | Some(Json::Null) => None,
                Some(_) => Some(need_ts(&v, "now")?),
            },
        },
        "unregister" => Request::Unregister { name: need("name")? },
        "audit" if all_tenants => Request::AuditAll { name: need("name")? },
        "audit" => Request::Audit { name: need("name")? },
        "subscribe" => Request::Subscribe,
        "stats" if all_tenants => Request::StatsAll,
        "stats" => Request::Stats,
        "metrics" if all_tenants => Request::MetricsAll,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        "create-tenant" => Request::CreateTenant { name: need("name")? },
        "drop-tenant" => Request::DropTenant { name: need("name")? },
        "list-tenants" => Request::ListTenants,
        other => return Err(format!("unknown command {other:?}")),
    };
    Ok(Envelope { tenant, req })
}

/// Reads a timestamp field: raw seconds, or any string form the session
/// `@` headers accept.
fn need_ts(v: &Json, key: &str) -> Result<Timestamp, String> {
    let field = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
    match field {
        Json::Int(i) => Ok(Timestamp(*i)),
        Json::Str(s) => {
            let trimmed = s.trim().trim_matches('\'');
            Timestamp::parse(trimmed).ok_or_else(|| format!("{key}: invalid timestamp {s:?}"))
        }
        _ => Err(format!("{key}: expected seconds or a timestamp string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let r = parse_request(r#"{"cmd":"dml","ts":100,"sql":"INSERT INTO t VALUES (1);"}"#);
        assert_eq!(
            r.unwrap(),
            Request::Dml { ts: Timestamp(100), sql: "INSERT INTO t VALUES (1);".into() }
        );
        let r = parse_request(
            r#"{"cmd":"log","ts":"1/1/2008","user":"u","role":"r","purpose":"p","sql":"SELECT a FROM t"}"#,
        )
        .unwrap();
        match r {
            Request::Log { ts, user, .. } => {
                assert_eq!(ts, Timestamp::from_ymd(2008, 1, 1).unwrap());
                assert_eq!(user, "u");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"cmd":"register","name":"a","expr":"AUDIT x FROM t"}"#).unwrap(),
            Request::Register { name: "a".into(), expr: "AUDIT x FROM t".into(), now: None }
        );
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#).unwrap(), Request::Metrics);
        assert_eq!(Request::Metrics.cmd_name(), "metrics");
        assert_eq!(parse_request(r#"{"cmd":"subscribe"}"#).unwrap(), Request::Subscribe);
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn envelopes_carry_tenant_and_fleet_flags() {
        let env = parse_envelope(r#"{"cmd":"stats","tenant":"acme"}"#).unwrap();
        assert_eq!(env.tenant.as_deref(), Some("acme"));
        assert_eq!(env.req, Request::Stats);
        // Absent / null tenant means the default shard.
        assert_eq!(parse_envelope(r#"{"cmd":"stats"}"#).unwrap().tenant, None);
        assert_eq!(parse_envelope(r#"{"cmd":"stats","tenant":null}"#).unwrap().tenant, None);
        // all_tenants lifts audit/stats/metrics to their fleet forms.
        assert_eq!(
            parse_envelope(r#"{"cmd":"audit","name":"a","all_tenants":true}"#).unwrap().req,
            Request::AuditAll { name: "a".into() }
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"stats","all_tenants":true}"#).unwrap().req,
            Request::StatsAll
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"metrics","all_tenants":true}"#).unwrap().req,
            Request::MetricsAll
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"metrics","all_tenants":false}"#).unwrap().req,
            Request::Metrics
        );
        // Tenant administration commands.
        assert_eq!(
            parse_envelope(r#"{"cmd":"create-tenant","name":"acme"}"#).unwrap().req,
            Request::CreateTenant { name: "acme".into() }
        );
        assert_eq!(
            parse_envelope(r#"{"cmd":"drop-tenant","name":"acme"}"#).unwrap().req,
            Request::DropTenant { name: "acme".into() }
        );
        assert_eq!(parse_envelope(r#"{"cmd":"list-tenants"}"#).unwrap().req, Request::ListTenants);
        assert!(Request::ListTenants.is_fleet_op());
        assert!(!Request::Stats.is_fleet_op());
        assert_eq!(Request::StatsAll.cmd_name(), "stats-all");
        // Malformed addressing is rejected with the offending field named.
        assert!(parse_envelope(r#"{"cmd":"stats","tenant":7}"#).unwrap_err().contains("tenant"));
        assert!(parse_envelope(r#"{"cmd":"stats","all_tenants":"yes"}"#)
            .unwrap_err()
            .contains("all_tenants"));
    }

    #[test]
    fn bad_requests_name_the_problem() {
        assert!(parse_request("not json").unwrap_err().contains("byte"));
        assert!(parse_request(r#"{"ts":1}"#).unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":"fly"}"#).unwrap_err().contains("unknown command"));
        assert!(parse_request(r#"{"cmd":"dml","ts":"soon","sql":"x"}"#)
            .unwrap_err()
            .contains("invalid timestamp"));
        assert!(parse_request(r#"{"cmd":"log","ts":1,"sql":"x"}"#).unwrap_err().contains("user"));
    }
}
