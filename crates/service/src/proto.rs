//! The `audexd` wire protocol: one JSON object per line, in both
//! directions.
//!
//! # Requests
//!
//! Every request carries a `"cmd"` field; timestamps accept either raw
//! seconds or the session-file string forms (`D/M/YYYY[:HH-MM-SS]`,
//! quoted ISO) — the same parser the `audex` CLI uses for `@` headers.
//!
//! ```text
//! {"cmd":"dml","ts":"1/1/2008","sql":"INSERT INTO t VALUES (1);"}
//! {"cmd":"log","ts":"2/1/2008:09-30-00","user":"u-4","role":"nurse","purpose":"treatment","sql":"SELECT ..."}
//! {"cmd":"register","name":"fig4","expr":"AUDIT disease FROM Patients ..."}
//! {"cmd":"unregister","name":"fig4"}
//! {"cmd":"audit","name":"fig4"}
//! {"cmd":"subscribe"}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"shutdown"}
//! ```
//!
//! # Responses and events
//!
//! Every request gets exactly one response line with an `"ok"` field.
//! Rejections carry `"error"`; governor trips additionally carry
//! `"busy":true` — the client should back off and retry. Connections that
//! sent `subscribe` also receive `{"event":...}` lines (scores and verdict
//! updates) as queries are ingested; events never interleave into the
//! middle of a response line.

use audex_sql::Timestamp;

use crate::json::Json;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply timestamped DML, advancing the versioned backlog.
    Dml {
        /// Execution instant of the first statement; each further
        /// statement in `sql` advances the clock by one second, like a
        /// session script block.
        ts: Timestamp,
        /// One or more `;`-separated DML statements.
        sql: String,
    },
    /// Append one annotated query to the access log and score it.
    Log {
        /// Execution instant (must be ≥ the newest logged entry).
        ts: Timestamp,
        /// Submitting user id.
        user: String,
        /// Role acted under.
        role: String,
        /// Declared purpose.
        purpose: String,
        /// The SELECT text.
        sql: String,
    },
    /// Register a standing audit expression under a name.
    Register {
        /// Name for later `audit` / `unregister` calls.
        name: String,
        /// The audit-expression text (paper Fig. 7 grammar).
        expr: String,
        /// Reference "now" for `now()` and interval defaults; defaults to
        /// the latest instant the service has seen.
        now: Option<Timestamp>,
    },
    /// Drop a standing audit expression.
    Unregister {
        /// The name it was registered under.
        name: String,
    },
    /// Evaluate a standing audit from the touch index (no log re-run).
    Audit {
        /// The name it was registered under.
        name: String,
    },
    /// Subscribe this connection to score/verdict events.
    Subscribe,
    /// Service counters.
    Stats,
    /// The metrics registry as Prometheus text exposition.
    Metrics,
    /// Stop the service.
    Shutdown,
}

impl Request {
    /// The wire command name, as the `cmd` label of the per-request
    /// latency histogram.
    pub fn cmd_name(&self) -> &'static str {
        match self {
            Request::Dml { .. } => "dml",
            Request::Log { .. } => "log",
            Request::Register { .. } => "register",
            Request::Unregister { .. } => "unregister",
            Request::Audit { .. } => "audit",
            Request::Subscribe => "subscribe",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line)?;
    let cmd =
        v.get("cmd").and_then(Json::as_str).ok_or_else(|| "missing \"cmd\" field".to_string())?;
    let need = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{cmd}: missing string field {key:?}"))
    };
    match cmd {
        "dml" => Ok(Request::Dml { ts: need_ts(&v, "ts")?, sql: need("sql")? }),
        "log" => Ok(Request::Log {
            ts: need_ts(&v, "ts")?,
            user: need("user")?,
            role: need("role")?,
            purpose: need("purpose")?,
            sql: need("sql")?,
        }),
        "register" => Ok(Request::Register {
            name: need("name")?,
            expr: need("expr")?,
            now: match v.get("now") {
                None | Some(Json::Null) => None,
                Some(_) => Some(need_ts(&v, "now")?),
            },
        }),
        "unregister" => Ok(Request::Unregister { name: need("name")? }),
        "audit" => Ok(Request::Audit { name: need("name")? }),
        "subscribe" => Ok(Request::Subscribe),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Reads a timestamp field: raw seconds, or any string form the session
/// `@` headers accept.
fn need_ts(v: &Json, key: &str) -> Result<Timestamp, String> {
    let field = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
    match field {
        Json::Int(i) => Ok(Timestamp(*i)),
        Json::Str(s) => {
            let trimmed = s.trim().trim_matches('\'');
            Timestamp::parse(trimmed).ok_or_else(|| format!("{key}: invalid timestamp {s:?}"))
        }
        _ => Err(format!("{key}: expected seconds or a timestamp string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let r = parse_request(r#"{"cmd":"dml","ts":100,"sql":"INSERT INTO t VALUES (1);"}"#);
        assert_eq!(
            r.unwrap(),
            Request::Dml { ts: Timestamp(100), sql: "INSERT INTO t VALUES (1);".into() }
        );
        let r = parse_request(
            r#"{"cmd":"log","ts":"1/1/2008","user":"u","role":"r","purpose":"p","sql":"SELECT a FROM t"}"#,
        )
        .unwrap();
        match r {
            Request::Log { ts, user, .. } => {
                assert_eq!(ts, Timestamp::from_ymd(2008, 1, 1).unwrap());
                assert_eq!(user, "u");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"cmd":"register","name":"a","expr":"AUDIT x FROM t"}"#).unwrap(),
            Request::Register { name: "a".into(), expr: "AUDIT x FROM t".into(), now: None }
        );
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#).unwrap(), Request::Metrics);
        assert_eq!(Request::Metrics.cmd_name(), "metrics");
        assert_eq!(parse_request(r#"{"cmd":"subscribe"}"#).unwrap(), Request::Subscribe);
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn bad_requests_name_the_problem() {
        assert!(parse_request("not json").unwrap_err().contains("byte"));
        assert!(parse_request(r#"{"ts":1}"#).unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":"fly"}"#).unwrap_err().contains("unknown command"));
        assert!(parse_request(r#"{"cmd":"dml","ts":"soon","sql":"x"}"#)
            .unwrap_err()
            .contains("invalid timestamp"));
        assert!(parse_request(r#"{"cmd":"log","ts":1,"sql":"x"}"#).unwrap_err().contains("user"));
    }
}
