//! A minimal line-oriented JSON value: parser and writer.
//!
//! The wire format of `audexd` is one JSON object per line. DESIGN.md §5
//! keeps the workspace free of serde, and the build runs with no registry
//! access, so this module hand-rolls the small subset the protocol needs:
//! objects, arrays, strings (with escapes), integers, floats, booleans and
//! null. Objects preserve insertion order so encoded output is
//! deterministic — tests compare response lines byte-for-byte.

use std::fmt;

/// Maximum container nesting the parser accepts. The parser is recursive
/// descent, so unbounded nesting on a network-facing input would overflow
/// the thread stack; 64 levels is far beyond anything the protocol emits.
pub const MAX_NESTING_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed as an integer (no `.`, `e`, or overflow).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last value
    /// on lookup, like every mainstream parser).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (floats with zero fraction qualify).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value and requires only whitespace after it.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Convenience: builds an object from (key, value) pairs.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        i64::try_from(i).map(Json::Int).unwrap_or(Json::Float(i as f64))
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::from(i as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_NESTING_DEPTH}")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&hex) {
                                let lo = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 7)
                                    .filter(|t| t.starts_with(b"\\u"))
                                    .and_then(|t| std::str::from_utf8(&t[2..]).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .filter(|lo| (0xdc00..0xe000).contains(lo))
                                    .ok_or_else(|| self.err("lone high surrogate"))?;
                                self.pos += 6;
                                0x10000 + ((hex - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hex
                            };
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            // JSON has no Infinity/NaN; null is the least-surprising spelling.
            Json::Float(_) => write!(f, "null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            r#"{"cmd":"log","ts":1199145600,"user":"u-4","ok":true,"x":null}"#,
            r#"[1,-2,3.5,"a\nb",[],{}]"#,
            r#""quote \" backslash \\ unicode é""#,
            "-9007199254740993",
        ] {
            let v = Json::parse(text).unwrap();
            let v2 = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn lookup_and_coercions() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true],"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_int), Some(2), "last duplicate wins");
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::parse("3.0").unwrap().as_int(), Some(3));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""🤔""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f914}"));
        assert!(Json::parse(r#""\ud83e""#).is_err(), "lone surrogate is rejected");
    }

    #[test]
    fn garbage_is_rejected_with_position() {
        for bad in ["{", r#"{"a"}"#, "[1,]", "tru", "\"unterminated", "1 2"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("byte"), "{bad} -> {err}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // At the limit: fine. One past: clean error, not a stack overflow.
        let ok = format!("{}{}", "[".repeat(MAX_NESTING_DEPTH), "]".repeat(MAX_NESTING_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        for deep in [MAX_NESTING_DEPTH + 1, 100_000] {
            let bad = format!("{}{}", "[".repeat(deep), "]".repeat(deep));
            let err = Json::parse(&bad).unwrap_err();
            assert!(err.contains("nesting"), "{err}");
        }
        // Mixed object/array nesting counts the same.
        let mixed = format!(r#"{}"x"{}"#, r#"{"k":["#.repeat(40), "]}".repeat(40));
        let err = Json::parse(&mixed).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn control_chars_escape() {
        let s = Json::Str("a\u{1}\n".into()).to_string();
        assert_eq!(s, "\"a\\u0001\\n\"");
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("a\u{1}\n"));
    }
}
