//! Deterministic network fault injection for the `audexd` front door.
//!
//! The front-door robustness claims ("one stalled subscriber never blocks
//! ingest", "a torn frame never kills the connection loop") are only worth
//! anything if they are *tested* — this module is the network counterpart
//! of [`audex_storage::fault`]'s scan and I/O fault plans. A
//! [`NetFaultPlan`] is armed on a [`crate::Server`] (via
//! [`crate::FrontDoorConfig::faults`] or the CLI's repeatable
//! `--net-fault` flag) and injects faults at the server's own network I/O
//! boundary, addressed by **accept ordinal** (the Nth accepted connection,
//! 1-based; 0 means every connection):
//!
//! * **torn frames** — reads from the connection are delivered in
//!   fragments of at most `chunk` bytes, so request lines arrive split at
//!   arbitrary byte boundaries;
//! * **mid-request disconnect** — the connection signals EOF after the
//!   server has read `bytes` bytes from it, modelling a client dying
//!   halfway through a request line;
//! * **stalled reader** — writes *to* the connection absorb only `bytes`
//!   bytes and then time out, exactly what a full kernel send buffer looks
//!   like when the peer never drains its socket (deterministic, no kernel
//!   buffer tuning required);
//! * **slow writer** — every read from the connection first sleeps
//!   `pause_ms`, modelling a client that trickles its bytes out.
//!
//! The plan is deterministic — no randomness, no time dependence beyond
//! the explicit pauses — so a failing test reproduces exactly. Byte
//! counters are per connection and shared between the connection's reader
//! and writer halves.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which connection a fault addresses: the Nth accepted connection
/// (1-based), or every connection when 0.
type ConnOrdinal = u64;

#[derive(Debug, Clone, PartialEq, Eq)]
enum FaultKind {
    /// Reads delivered in fragments of at most this many bytes.
    Torn { chunk: usize },
    /// EOF after this many bytes have been read from the connection.
    DisconnectAfter { bytes: u64 },
    /// Writes absorb this many bytes, then time out.
    StallWrites { absorb: u64 },
    /// Every read pauses this long first.
    SlowReads { pause_ms: u64 },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ConnFault {
    conn: ConnOrdinal,
    kind: FaultKind,
}

/// A deterministic, connection-addressed plan of network faults.
///
/// Build one with the fluent constructors or parse the CLI's
/// `kind:conn:arg` spec strings with [`NetFaultPlan::with_spec`], then arm
/// it through [`crate::FrontDoorConfig::faults`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    faults: Vec<ConnFault>,
}

impl NetFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads from connection `conn` arrive in fragments of at most
    /// `chunk` bytes (torn frames).
    pub fn torn_frames(mut self, conn: ConnOrdinal, chunk: usize) -> Self {
        assert!(chunk > 0, "torn-frame chunks must be at least 1 byte");
        self.faults.push(ConnFault { conn, kind: FaultKind::Torn { chunk } });
        self
    }

    /// Connection `conn` signals EOF after the server has read `bytes`
    /// bytes from it (mid-request disconnect).
    pub fn disconnect_after(mut self, conn: ConnOrdinal, bytes: u64) -> Self {
        self.faults.push(ConnFault { conn, kind: FaultKind::DisconnectAfter { bytes } });
        self
    }

    /// Writes to connection `conn` absorb only `absorb` bytes and then
    /// time out (a stalled reader that never drains its socket).
    pub fn stall_writes(mut self, conn: ConnOrdinal, absorb: u64) -> Self {
        self.faults.push(ConnFault { conn, kind: FaultKind::StallWrites { absorb } });
        self
    }

    /// Every read from connection `conn` sleeps `pause_ms` first (a slow
    /// writer trickling bytes).
    pub fn slow_reads(mut self, conn: ConnOrdinal, pause_ms: u64) -> Self {
        self.faults.push(ConnFault { conn, kind: FaultKind::SlowReads { pause_ms } });
        self
    }

    /// Parses and adds one CLI spec of the form `kind:conn:arg` where
    /// `kind` is `torn` (arg: chunk bytes), `eof` (arg: bytes read),
    /// `stall` (arg: bytes absorbed) or `slow` (arg: pause ms), and `conn`
    /// is the 1-based accept ordinal (0 = every connection).
    pub fn with_spec(self, spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let [kind, conn, arg] = parts.as_slice() else {
            return Err(format!(
                "net-fault spec {spec:?}: expected kind:conn:arg (e.g. torn:0:7, stall:2:512)"
            ));
        };
        let conn: u64 =
            conn.parse().map_err(|_| format!("net-fault spec {spec:?}: bad conn ordinal"))?;
        let arg: u64 = arg.parse().map_err(|_| format!("net-fault spec {spec:?}: bad argument"))?;
        match *kind {
            "torn" => {
                if arg == 0 {
                    return Err(format!("net-fault spec {spec:?}: chunk must be at least 1"));
                }
                Ok(self.torn_frames(conn, arg as usize))
            }
            "eof" => Ok(self.disconnect_after(conn, arg)),
            "stall" => Ok(self.stall_writes(conn, arg)),
            "slow" => Ok(self.slow_reads(conn, arg)),
            other => Err(format!(
                "net-fault spec {spec:?}: unknown kind {other:?} (torn|eof|stall|slow)"
            )),
        }
    }

    /// True when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Arms the plan for one accepted connection: `None` when no fault
    /// addresses it (the fast path wraps nothing).
    pub(crate) fn arm(&self, ordinal: ConnOrdinal) -> Option<Arc<ConnFaultState>> {
        let mut state = ConnFaultState::default();
        let mut any = false;
        for f in &self.faults {
            if f.conn != 0 && f.conn != ordinal {
                continue;
            }
            any = true;
            match f.kind {
                FaultKind::Torn { chunk } => {
                    state.chunk =
                        Some(state.chunk.map_or(chunk, |existing: usize| existing.min(chunk)));
                }
                FaultKind::DisconnectAfter { bytes } => {
                    state.eof_after =
                        Some(state.eof_after.map_or(bytes, |existing: u64| existing.min(bytes)));
                }
                FaultKind::StallWrites { absorb } => {
                    state.absorb =
                        Some(state.absorb.map_or(absorb, |existing: u64| existing.min(absorb)));
                }
                FaultKind::SlowReads { pause_ms } => {
                    state.pause_ms = Some(
                        state.pause_ms.map_or(pause_ms, |existing: u64| existing.max(pause_ms)),
                    );
                }
            }
        }
        any.then(|| Arc::new(state))
    }
}

/// An armed per-connection fault: the merged effective limits plus the
/// connection's running byte counters (shared by both stream halves).
#[derive(Debug, Default)]
pub(crate) struct ConnFaultState {
    chunk: Option<usize>,
    eof_after: Option<u64>,
    absorb: Option<u64>,
    pause_ms: Option<u64>,
    read_bytes: AtomicU64,
    written_bytes: AtomicU64,
}

/// A server-side connection stream: the accepted [`TcpStream`] plus the
/// armed fault shim, if any. All front-door I/O goes through this type so
/// fault-injected and production connections share one code path.
#[derive(Debug)]
pub(crate) struct NetStream {
    inner: TcpStream,
    fault: Option<Arc<ConnFaultState>>,
}

impl NetStream {
    pub(crate) fn new(inner: TcpStream, fault: Option<Arc<ConnFaultState>>) -> NetStream {
        NetStream { inner, fault }
    }

    /// A second handle on the same connection sharing the fault counters
    /// (reader and writer halves count against one budget).
    pub(crate) fn try_clone(&self) -> io::Result<NetStream> {
        Ok(NetStream { inner: self.inner.try_clone()?, fault: self.fault.clone() })
    }

    pub(crate) fn shutdown(&self, how: Shutdown) {
        let _ = self.inner.shutdown(how);
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(fault) = &self.fault else {
            return self.inner.read(buf);
        };
        if let Some(ms) = fault.pause_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let mut want = buf.len();
        if let Some(chunk) = fault.chunk {
            want = want.min(chunk);
        }
        if let Some(cap) = fault.eof_after {
            let done = fault.read_bytes.load(Ordering::Relaxed);
            let remaining = cap.saturating_sub(done);
            if remaining == 0 {
                return Ok(0); // injected mid-request disconnect
            }
            want = want.min(remaining as usize);
        }
        let want = want.max(1).min(buf.len());
        let n = self.inner.read(&mut buf[..want])?;
        fault.read_bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(fault) = &self.fault else {
            return self.inner.write(buf);
        };
        let mut len = buf.len();
        if let Some(absorb) = fault.absorb {
            let done = fault.written_bytes.load(Ordering::Relaxed);
            let remaining = absorb.saturating_sub(done);
            if remaining == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("injected: peer stopped reading after absorbing {absorb} byte(s)"),
                ));
            }
            len = len.min(remaining as usize);
        }
        let n = self.inner.write(&buf[..len])?;
        fault.written_bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_to_builders() {
        let parsed = NetFaultPlan::new()
            .with_spec("torn:0:7")
            .unwrap()
            .with_spec("eof:3:64")
            .unwrap()
            .with_spec("stall:2:512")
            .unwrap()
            .with_spec("slow:4:2")
            .unwrap();
        let built = NetFaultPlan::new()
            .torn_frames(0, 7)
            .disconnect_after(3, 64)
            .stall_writes(2, 512)
            .slow_reads(4, 2);
        assert_eq!(parsed, built);
    }

    #[test]
    fn bad_specs_name_the_problem() {
        for (spec, what) in [
            ("torn:0", "kind:conn:arg"),
            ("torn:x:7", "conn ordinal"),
            ("torn:1:zero", "argument"),
            ("torn:1:0", "chunk"),
            ("fly:1:1", "unknown kind"),
        ] {
            let err = NetFaultPlan::new().with_spec(spec).unwrap_err();
            assert!(err.contains(what), "{spec}: {err}");
        }
    }

    #[test]
    fn arming_addresses_the_right_ordinal() {
        let plan = NetFaultPlan::new().torn_frames(0, 8).stall_writes(2, 100);
        let one = plan.arm(1).expect("conn 1 gets the every-conn torn fault");
        assert_eq!(one.chunk, Some(8));
        assert_eq!(one.absorb, None);
        let two = plan.arm(2).expect("conn 2 gets both");
        assert_eq!(two.chunk, Some(8));
        assert_eq!(two.absorb, Some(100));
        assert!(NetFaultPlan::new().arm(1).is_none(), "empty plan arms nothing");
    }

    #[test]
    fn overlapping_faults_merge_to_the_strictest() {
        let plan = NetFaultPlan::new().torn_frames(0, 8).torn_frames(1, 3).stall_writes(1, 50);
        let armed = plan.arm(1).expect("armed");
        assert_eq!(armed.chunk, Some(3), "smaller chunk wins");
        assert_eq!(armed.absorb, Some(50));
    }
}
