//! Multi-tenant sharding: org-scoped [`ServiceCore`]s behind one front
//! door.
//!
//! Production audit services are org-scoped by construction — a hospital
//! audits its own log, not its neighbour's — and the single-core service
//! made every org contend on one mutex and one WAL. The [`ShardMap`]
//! gives each tenant an *independent* [`ServiceCore`]: its own database,
//! query log, standing audits, dispatch index, governor, and
//! [`Journal`](audex_persist::Journal) under
//! `<data-dir>/tenants/<name>/` (the default tenant keeps the data-dir
//! root, so pre-tenancy stores need no migration — see
//! [`audex_persist::tenants`]). Independent tenants therefore ingest,
//! audit, and checkpoint fully in parallel: the hot path shares no lock.
//!
//! # Lock discipline
//!
//! * **Data plane** (`dml`/`log`/`register`/`audit`/...): take the shard
//!   map's read lock just long enough to clone one `Arc<Shard>`, release
//!   it, then lock that shard alone. No thread on the data plane ever
//!   holds two shard locks.
//! * **Control plane** (`create-tenant`/`drop-tenant`): serialize on the
//!   map's write lock; journal I/O for the new shard happens under it so
//!   two racing creates cannot double-open one WAL directory.
//! * **Fan-outs**: `stats`/`metrics` with `all_tenants` *try*-lock one
//!   shard at a time (snapshot-then-aggregate) and report a held shard
//!   as `busy` instead of waiting — a wedged or stuck tenant cannot
//!   block observability for the healthy ones. `audit --all-tenants`
//!   runs one worker per shard over
//!   [`par_map`](audex_core::parallel::par_map); each worker holds
//!   exactly one shard lock.
//! * **Drain** (in [`crate::server`]): the only place that holds every
//!   shard lock at once, acquired in `BTreeMap` (name) order.
//!
//! # Degraded tenants
//!
//! Fleet recovery ([`ShardMap::open`]) reopens every tenant directory;
//! a tenant whose journal or replay fails is *skipped and reported* —
//! it appears in `list-tenants` as `degraded` with the error, serves
//! nothing, and can be dropped — instead of failing the whole fleet.
//!
//! # Observability
//!
//! Each shard keeps its own metrics registry (per-tenant series stay
//! exact and byte-identical to a single-tenant daemon). The *fleet*
//! registry — the default shard's, which also carries the shared
//! front-door series — additionally aggregates per-tenant
//! `audex_tenant_*` series labeled `tenant=<name>`, refreshed on every
//! `stats`/`metrics --all-tenants`; the registry's 256-series-per-family
//! cardinality cap absorbs pathological tenant counts.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, TryLockError};

use audex_core::parallel::par_map;
use audex_obs::Registry;
use audex_persist::tenants as layout;
use audex_persist::{Journal, Recovered, WalOptions};
use audex_storage::Database;

use crate::json::{obj, Json};
use crate::proto::Request;
use crate::server::protocol_error;
use crate::state::{ServiceConfig, ServiceCore};

/// The tenant every unaddressed request goes to, unless `serve` renames
/// it with `--default-tenant`.
pub const DEFAULT_TENANT: &str = "default";

/// A validated tenant name (see [`audex_persist::tenants::valid_name`]
/// for the rules — it doubles as a directory name, so it must be a safe
/// path component).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// Validates and wraps a tenant name.
    pub fn new(name: &str) -> Result<TenantId, String> {
        layout::valid_name(name)?;
        Ok(TenantId(name.to_string()))
    }

    /// The tenant name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One tenant's shard: its name and its private [`ServiceCore`] behind
/// the shard's own mutex. Handlers for different tenants never contend.
pub struct Shard {
    id: TenantId,
    core: Mutex<ServiceCore>,
}

impl fmt::Debug for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard").field("id", &self.id).finish_non_exhaustive()
    }
}

impl Shard {
    fn new(id: TenantId, core: ServiceCore) -> Arc<Shard> {
        Arc::new(Shard { id, core: Mutex::new(core) })
    }

    /// The tenant this shard serves.
    pub fn id(&self) -> &TenantId {
        &self.id
    }

    /// Locks the shard's core (blocking). A handler panicking mid-request
    /// cannot leave worse state than a dropped request; keep serving.
    pub fn lock(&self) -> MutexGuard<'_, ServiceCore> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the shard's core only if free — the snapshot-then-aggregate
    /// fan-outs use this so one stuck tenant cannot stall the fleet.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, ServiceCore>> {
        match self.core.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// How a durable fleet opens its stores.
struct Durability {
    data_dir: PathBuf,
    wal: WalOptions,
}

/// Configuration for opening a durable fleet ([`ShardMap::open`]).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-shard service tuning (every tenant gets the same knobs).
    pub service: ServiceConfig,
    /// Name of the default tenant (`--default-tenant`; the shard that
    /// answers unaddressed requests and journals at the data-dir root).
    pub default_tenant: String,
    /// The fleet's data directory.
    pub data_dir: PathBuf,
    /// WAL tuning for every tenant's journal.
    pub wal: WalOptions,
}

/// What recovering one tenant found (or why it is degraded).
#[derive(Debug)]
pub struct TenantRecovery {
    /// The tenant name.
    pub tenant: String,
    /// Total records recovered (checkpoint prefix + WAL tail).
    pub records: u64,
    /// Records covered by the checkpoint (0 when none).
    pub via_checkpoint: u64,
    /// Records replayed from the WAL tail.
    pub tail: usize,
    /// Repair notes from the scan (torn tails, reconciliations).
    pub notes: Vec<String>,
    /// `Some(why)` when the tenant could not be recovered and was left
    /// degraded instead of joining the fleet.
    pub error: Option<String>,
}

impl TenantRecovery {
    fn summarize(tenant: &str, recovered: &Recovered) -> TenantRecovery {
        TenantRecovery {
            tenant: tenant.to_string(),
            records: recovered.total_records(),
            via_checkpoint: recovered.checkpoint.as_ref().map_or(0, |c| c.covers_seq),
            tail: recovered.tail.len(),
            notes: recovered.notes.clone(),
            error: None,
        }
    }

    fn failed(tenant: &str, error: String) -> TenantRecovery {
        TenantRecovery {
            tenant: tenant.to_string(),
            records: 0,
            via_checkpoint: 0,
            tail: 0,
            notes: Vec::new(),
            error: Some(error),
        }
    }
}

/// Everything fleet recovery found, tenant by tenant (default first).
#[derive(Debug)]
pub struct FleetRecovery {
    /// Per-tenant recovery summaries.
    pub tenants: Vec<TenantRecovery>,
}

/// Where a parsed request goes.
pub enum Routed {
    /// Lock this shard and run the request on its core.
    Shard(Arc<Shard>, Request),
    /// The fleet answered directly (control plane or fan-out): one
    /// response line, no events.
    Reply(Json),
    /// Stop the service; every journal has been synced. Send the
    /// response, then begin the drain.
    Shutdown(Json),
}

/// The tenant-keyed shard map: the layer between the front door and the
/// per-tenant cores. See the module docs for the lock discipline.
pub struct ShardMap {
    shards: RwLock<BTreeMap<TenantId, Arc<Shard>>>,
    default_shard: Arc<Shard>,
    default_id: TenantId,
    /// The fleet registry (the default shard's): front-door series plus
    /// the `audex_tenant_*` aggregates live here.
    registry: Arc<Registry>,
    config: ServiceConfig,
    durability: Option<Durability>,
    /// Tenants that failed recovery: name → why. Reported, not served.
    degraded: Mutex<BTreeMap<String, String>>,
    /// Set when a drain begins; the control plane refuses new work.
    frozen: AtomicBool,
}

impl ShardMap {
    /// Wraps one existing core as a single-tenant, ephemeral fleet under
    /// the default tenant name — the compatibility path every
    /// pre-tenancy embedder and test goes through.
    pub fn single(core: ServiceCore) -> ShardMap {
        let id = TenantId(DEFAULT_TENANT.to_string());
        ShardMap::build(core, id, None)
    }

    /// An ephemeral fleet (no data dir) around an existing default core.
    /// `create-tenant` makes in-memory tenants.
    pub fn with_default(core: ServiceCore, default_tenant: &str) -> Result<ShardMap, String> {
        let id = TenantId::new(default_tenant)?;
        Ok(ShardMap::build(core, id, None))
    }

    fn build(core: ServiceCore, id: TenantId, durability: Option<Durability>) -> ShardMap {
        let registry = core.registry();
        let config = core.config();
        let default_shard = Shard::new(id.clone(), core);
        let mut shards = BTreeMap::new();
        shards.insert(id.clone(), Arc::clone(&default_shard));
        ShardMap {
            shards: RwLock::new(shards),
            default_shard,
            default_id: id,
            registry,
            config,
            durability,
            degraded: Mutex::new(BTreeMap::new()),
            frozen: AtomicBool::new(false),
        }
    }

    /// Opens (and recovers) a durable fleet: the default tenant from the
    /// data-dir root, then every discovered `tenants/<name>/` store. A
    /// named tenant that fails to recover is left **degraded** — reported
    /// in the returned [`FleetRecovery`] and by `list-tenants`, but it
    /// does not fail the fleet. A failure on the *default* tenant is
    /// fatal, exactly like the single-tenant serve path it replaces.
    pub fn open(cfg: &FleetConfig) -> Result<(ShardMap, FleetRecovery), String> {
        let id = TenantId::new(&cfg.default_tenant)?;
        let dir = &cfg.data_dir;
        let (journal, mut recovered) = Journal::open(dir, cfg.wal)
            .map_err(|e| format!("opening durable store {}: {e}", dir.display()))?;
        let mut core = ServiceCore::recovered(&mut recovered, cfg.service)
            .map_err(|e| format!("recovering service state from {}: {e}", dir.display()))?;
        core.attach_journal(journal);
        let map =
            ShardMap::build(core, id, Some(Durability { data_dir: dir.clone(), wal: cfg.wal }));
        let mut report = vec![TenantRecovery::summarize(&cfg.default_tenant, &recovered)];

        let discovered = layout::discover(dir)
            .map_err(|e| format!("enumerating {}/tenants: {e}", dir.display()))?;
        for (name, tenant_dir) in discovered {
            if name == cfg.default_tenant {
                // A directory shadowing the default tenant's name cannot
                // be served (the default journals at the root); report it
                // as degraded rather than silently keeping two stores.
                let why = "shadows the default tenant (its store is the data-dir root)".to_string();
                map.mark_degraded(&name, &why);
                report.push(TenantRecovery::failed(&name, why));
                continue;
            }
            match map.open_shard(&name, &tenant_dir) {
                Ok(recovered) => report.push(TenantRecovery::summarize(&name, &recovered)),
                Err(why) => {
                    map.mark_degraded(&name, &why);
                    report.push(TenantRecovery::failed(&name, why));
                }
            }
        }
        Ok((map, FleetRecovery { tenants: report }))
    }

    /// Opens one named tenant's store, builds its core, and inserts the
    /// shard. Takes the map write lock only for the insert (recovery can
    /// be long; routing to other tenants keeps flowing).
    fn open_shard(&self, name: &str, dir: &Path) -> Result<Recovered, String> {
        let id = TenantId::new(name)?;
        let wal = match &self.durability {
            Some(d) => d.wal,
            None => return Err("fleet has no data directory".into()),
        };
        let (journal, mut recovered) =
            Journal::open(dir, wal).map_err(|e| format!("opening {}: {e}", dir.display()))?;
        let mut core = ServiceCore::recovered(&mut recovered, self.config)
            .map_err(|e| format!("replaying {}: {e}", dir.display()))?;
        core.attach_journal(journal);
        core.set_front_registry(Arc::clone(&self.registry));
        self.lock_shards_mut().insert(id.clone(), Shard::new(id, core));
        Ok(recovered)
    }

    fn lock_shards(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<TenantId, Arc<Shard>>> {
        self.shards.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shards_mut(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<TenantId, Arc<Shard>>> {
        self.shards.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_degraded(&self) -> MutexGuard<'_, BTreeMap<String, String>> {
        self.degraded.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn mark_degraded(&self, name: &str, why: &str) {
        self.lock_degraded().insert(name.to_string(), why.to_string());
    }

    /// The fleet registry: the default shard's, shared with the front
    /// door and carrying the `audex_tenant_*` aggregates.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The default tenant's name.
    pub fn default_tenant(&self) -> &str {
        self.default_id.name()
    }

    /// How many tenants are currently serving (degraded ones excluded).
    pub fn tenant_count(&self) -> usize {
        self.lock_shards().len()
    }

    /// Every serving shard, in name order — the drain and the fan-outs
    /// iterate this snapshot so they never hold the map lock while
    /// touching a shard.
    pub fn shards(&self) -> Vec<Arc<Shard>> {
        self.lock_shards().values().cloned().collect()
    }

    /// Runs `f` on the default tenant's core (the CLI uses this to attach
    /// a tracer after recovery).
    pub fn with_default_core<R>(&self, f: impl FnOnce(&mut ServiceCore) -> R) -> R {
        let mut core = self.default_shard.lock();
        f(&mut core)
    }

    /// Freezes the control plane: `create-tenant`/`drop-tenant` refuse
    /// from here on. Called at the start of a drain so no shard can be
    /// born after the drain collected its lock set.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
    }

    fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::SeqCst)
    }

    /// Resolves a tenant address to its shard. `None` is the default
    /// tenant — the compatibility path for every pre-tenancy client.
    pub fn resolve(&self, tenant: Option<&str>) -> Result<Arc<Shard>, String> {
        let Some(name) = tenant else { return Ok(Arc::clone(&self.default_shard)) };
        if name == self.default_id.name() {
            return Ok(Arc::clone(&self.default_shard));
        }
        let id = TenantId::new(name)?;
        if let Some(shard) = self.lock_shards().get(&id) {
            return Ok(Arc::clone(shard));
        }
        if let Some(why) = self.lock_degraded().get(name) {
            return Err(format!("tenant {name:?} is degraded: {why}"));
        }
        Err(format!("unknown tenant {name:?} (create-tenant first)"))
    }

    /// Routes one parsed request: fleet-scoped commands are answered
    /// here; everything else resolves to one shard for the transport to
    /// lock and run. Fleet ops observe the same per-command latency
    /// histogram the cores keep, in the fleet registry.
    pub fn route(&self, tenant: Option<&str>, req: Request) -> Routed {
        if req.is_fleet_op() || req == Request::Shutdown {
            let started = std::time::Instant::now();
            let cmd = req.cmd_name();
            let routed = match req {
                Request::CreateTenant { name } => Routed::Reply(self.create_tenant(&name)),
                Request::DropTenant { name } => Routed::Reply(self.drop_tenant(&name)),
                Request::ListTenants => Routed::Reply(self.list_tenants()),
                Request::StatsAll => Routed::Reply(self.stats_all()),
                Request::MetricsAll => Routed::Reply(self.metrics_all()),
                Request::AuditAll { name } => Routed::Reply(self.audit_all(&name)),
                Request::Shutdown => Routed::Shutdown(self.shutdown()),
                // is_fleet_op + Shutdown is exhaustive above.
                other => Routed::Shard(Arc::clone(&self.default_shard), other),
            };
            self.registry
                .latency_histogram(
                    "audex_request_seconds",
                    "Wall-clock per wire request, by command.",
                    &[("cmd", cmd)],
                )
                .observe_duration(started.elapsed());
            routed
        } else {
            match self.resolve(tenant) {
                Ok(shard) => Routed::Shard(shard, req),
                Err(why) => Routed::Reply(protocol_error(why)),
            }
        }
    }

    /// `create-tenant`: a fresh, empty shard (and, when the fleet is
    /// durable, a fresh journal under `tenants/<name>/`). Serialized on
    /// the map write lock so racing creates cannot double-open one WAL.
    fn create_tenant(&self, name: &str) -> Json {
        if self.is_frozen() {
            return protocol_error("create-tenant: shutting down".into());
        }
        let id = match TenantId::new(name) {
            Ok(id) => id,
            Err(e) => return protocol_error(format!("create-tenant: {e}")),
        };
        let mut shards = self.lock_shards_mut();
        if shards.contains_key(&id) {
            return protocol_error(format!("tenant {name:?} already exists"));
        }
        if self.lock_degraded().contains_key(name) {
            return protocol_error(format!(
                "tenant {name:?} exists but is degraded; drop-tenant it first"
            ));
        }
        let core = match &self.durability {
            Some(d) => {
                let dir = layout::tenant_dir(&d.data_dir, name);
                let (journal, mut recovered) = match Journal::open(&dir, d.wal) {
                    Ok(opened) => opened,
                    Err(e) => {
                        return protocol_error(format!(
                            "create-tenant {name:?}: opening {}: {e}",
                            dir.display()
                        ))
                    }
                };
                let mut core = match ServiceCore::recovered(&mut recovered, self.config) {
                    Ok(core) => core,
                    Err(e) => return protocol_error(format!("create-tenant {name:?}: {e}")),
                };
                core.attach_journal(journal);
                core
            }
            None => ServiceCore::new(Database::new(), self.config),
        };
        let mut core = core;
        core.set_front_registry(Arc::clone(&self.registry));
        shards.insert(id.clone(), Shard::new(id, core));
        obj([
            ("ok", Json::Bool(true)),
            ("tenant", Json::from(name)),
            ("created", Json::Bool(true)),
            ("tenants", Json::from(shards.len() as u64)),
        ])
    }

    /// `drop-tenant`: detaches the shard, syncs its journal, and retires
    /// its store directory by rename (never delete — it's audit data).
    /// The default tenant cannot be dropped. Degraded tenants can: that
    /// is how an operator clears a corrupt store out of the roster.
    fn drop_tenant(&self, name: &str) -> Json {
        if self.is_frozen() {
            return protocol_error("drop-tenant: shutting down".into());
        }
        if name == self.default_id.name() {
            return protocol_error(format!("drop-tenant: cannot drop the default tenant {name:?}"));
        }
        let Ok(id) = TenantId::new(name) else {
            return protocol_error(format!("unknown tenant {name:?}"));
        };
        let removed = self.lock_shards_mut().remove(&id);
        let was_degraded = removed.is_none() && self.lock_degraded().remove(name).is_some();
        if removed.is_none() && !was_degraded {
            return protocol_error(format!("unknown tenant {name:?}"));
        }
        if let Some(shard) = &removed {
            // Wait out any in-flight request, then make the store durable
            // before it is renamed away.
            let core = shard.lock();
            if let Some(journal) = core.journal() {
                let _ = journal.sync();
            }
        }
        let retired = match &self.durability {
            Some(d) => match layout::retire_dir(&d.data_dir, name) {
                Ok(path) => path,
                Err(e) => {
                    // The shard is already detached; surface the failure
                    // (the dir would resurrect the tenant next recovery).
                    return protocol_error(format!(
                        "drop-tenant {name:?}: detached, but retiring its store failed: {e}"
                    ));
                }
            },
            None => None,
        };
        obj([
            ("ok", Json::Bool(true)),
            ("tenant", Json::from(name)),
            ("dropped", Json::Bool(true)),
            (
                "retired",
                match retired {
                    Some(path) => Json::Str(path.display().to_string()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// `list-tenants`: one summary row per tenant (serving rows first in
    /// name order, then degraded ones). Rows use `try_lock` so a busy
    /// shard shows `busy:true` instead of stalling the listing.
    fn list_tenants(&self) -> Json {
        let mut rows = Vec::new();
        for shard in self.shards() {
            let name = shard.id().name();
            let mut fields: Vec<(String, Json)> = vec![("tenant".into(), Json::from(name))];
            if *shard.id() == self.default_id {
                fields.push(("default".into(), Json::Bool(true)));
            }
            match shard.try_lock() {
                Some(core) => {
                    let c = core.counters();
                    fields.push(("queries_ingested".into(), Json::from(c.queries_ingested)));
                    fields.push(("log_len".into(), Json::from(core.log().len())));
                    fields.push(("registered_audits".into(), Json::from(core.registered_audits())));
                    fields.push(("durable".into(), Json::Bool(core.journal().is_some())));
                    fields.push((
                        "journal_wedged".into(),
                        match core.journal().and_then(|j| j.wedged()) {
                            Some(e) => Json::Str(e),
                            None => Json::Null,
                        },
                    ));
                }
                None => fields.push(("busy".into(), Json::Bool(true))),
            }
            rows.push(Json::Obj(fields));
        }
        for (name, why) in self.lock_degraded().iter() {
            rows.push(Json::Obj(vec![
                ("tenant".into(), Json::from(name.as_str())),
                ("degraded".into(), Json::Bool(true)),
                ("error".into(), Json::Str(why.clone())),
            ]));
        }
        obj([
            ("ok", Json::Bool(true)),
            ("default", Json::from(self.default_id.name())),
            ("tenants", Json::Arr(rows)),
        ])
    }

    /// `stats --all-tenants`: snapshot-then-aggregate. The shard list is
    /// snapshotted first (map lock released), then each shard is
    /// *try*-locked in turn — **at most one shard lock is held at any
    /// moment**, and a shard that is busy (wedged in a long request, or
    /// its journal stuck in an I/O stall) yields a `busy` row instead of
    /// blocking the healthy tenants' numbers.
    fn stats_all(&self) -> Json {
        let mut rows = Vec::new();
        let mut busy = 0u64;
        for shard in self.shards() {
            let name = shard.id().name().to_string();
            match shard.try_lock() {
                Some(mut core) => {
                    self.publish_tenant_series(&name, &core);
                    let response = core.handle(Request::Stats).response;
                    rows.push(tag_tenant(&name, response));
                }
                None => {
                    busy += 1;
                    rows.push(Json::Obj(vec![
                        ("tenant".into(), Json::Str(name)),
                        ("busy".into(), Json::Bool(true)),
                    ]));
                }
            }
        }
        for (name, why) in self.lock_degraded().iter() {
            rows.push(Json::Obj(vec![
                ("tenant".into(), Json::from(name.as_str())),
                ("degraded".into(), Json::Bool(true)),
                ("error".into(), Json::Str(why.clone())),
            ]));
        }
        obj([
            ("ok", Json::Bool(true)),
            ("tenants", Json::Arr(rows)),
            ("busy_tenants", Json::from(busy)),
        ])
    }

    /// `metrics --all-tenants`: refresh the `audex_tenant_*` aggregates
    /// from every reachable shard, then render the fleet registry once.
    fn metrics_all(&self) -> Json {
        let mut busy = 0u64;
        for shard in self.shards() {
            match shard.try_lock() {
                Some(core) => self.publish_tenant_series(shard.id().name(), &core),
                None => busy += 1,
            }
        }
        obj([
            ("ok", Json::Bool(true)),
            ("metrics", Json::Str(self.registry.render_prometheus())),
            ("busy_tenants", Json::from(busy)),
        ])
    }

    /// Copies one shard's headline counters into the fleet registry as
    /// `tenant`-labeled series. `store`/`set` (not `add`): the shard's
    /// own registry stays authoritative and re-publishing is idempotent.
    fn publish_tenant_series(&self, name: &str, core: &ServiceCore) {
        let labels = [("tenant", name)];
        let c = core.counters();
        let counters = [
            (
                "audex_tenant_queries_ingested_total",
                "Per-tenant queries ingested.",
                c.queries_ingested,
            ),
            (
                "audex_tenant_queries_rejected_total",
                "Per-tenant requests refused.",
                c.queries_rejected,
            ),
            (
                "audex_tenant_dml_statements_total",
                "Per-tenant DML statements applied.",
                c.dml_statements,
            ),
            (
                "audex_tenant_events_emitted_total",
                "Per-tenant subscriber events produced.",
                c.events_emitted,
            ),
        ];
        for (series, help, value) in counters {
            self.registry.counter(series, help, &labels).store(value);
        }
        let gauges = [
            ("audex_tenant_log_len", "Per-tenant query-log length.", core.log().len() as i64),
            (
                "audex_tenant_registered_audits",
                "Per-tenant standing audits registered.",
                core.registered_audits() as i64,
            ),
            (
                "audex_tenant_journal_wedged",
                "1 when the tenant's journal is wedged (durability lost).",
                i64::from(core.journal().and_then(|j| j.wedged()).is_some()),
            ),
        ];
        for (series, help, value) in gauges {
            self.registry.gauge(series, help, &labels).set(value);
        }
    }

    /// `audit --all-tenants`: evaluate one named standing audit on every
    /// tenant that has it, fanned out over [`par_map`] — one worker per
    /// shard, each holding exactly one shard lock, reports isolated per
    /// tenant. Tenants without the registration are listed in `skipped`.
    fn audit_all(&self, name: &str) -> Json {
        let shards = self.shards();
        let workers =
            if self.config.parallelism == 0 { shards.len() } else { self.config.parallelism };
        let results: Vec<(String, Option<Json>)> = par_map(workers, &shards, |_, shard| {
            let mut core = shard.lock();
            if !core.has_audit(name) {
                return (shard.id().name().to_string(), None);
            }
            let response = core.handle(Request::Audit { name: name.to_string() }).response;
            (shard.id().name().to_string(), Some(response))
        });
        let mut rows = Vec::new();
        let mut skipped = Vec::new();
        for (tenant, response) in results {
            match response {
                Some(r) => rows.push(tag_tenant(&tenant, r)),
                None => skipped.push(Json::Str(tenant)),
            }
        }
        obj([
            ("ok", Json::Bool(true)),
            ("name", Json::from(name)),
            ("tenants", Json::Arr(rows)),
            ("skipped", Json::Arr(skipped)),
        ])
    }

    /// `shutdown`: freeze the control plane and make every tenant's WAL
    /// durable (one shard lock at a time), exactly as the single-tenant
    /// core did for its one journal. The transport starts its drain on
    /// seeing [`Routed::Shutdown`].
    fn shutdown(&self) -> Json {
        self.freeze();
        for shard in self.shards() {
            let core = shard.lock();
            if let Some(journal) = core.journal() {
                let _ = journal.sync();
            }
        }
        obj([("ok", Json::Bool(true)), ("stopping", Json::Bool(true))])
    }
}

/// Prefixes a per-shard response object with its tenant name, keeping
/// the shard's own fields byte-identical after the tag.
fn tag_tenant(name: &str, response: Json) -> Json {
    match response {
        Json::Obj(fields) => {
            let mut tagged = Vec::with_capacity(fields.len() + 1);
            tagged.push(("tenant".to_string(), Json::from(name)));
            tagged.extend(fields);
            Json::Obj(tagged)
        }
        other => Json::Obj(vec![
            ("tenant".to_string(), Json::from(name)),
            ("response".to_string(), other),
        ]),
    }
}

/// Renders a `list-tenants` response as the aligned table `audex send`
/// prints on a terminal (`*` marks the default tenant).
pub fn render_tenant_table(response: &Json) -> String {
    let mut out = String::new();
    let Some(rows) = response.get("tenants").and_then(Json::as_arr) else {
        return format!("{response}\n");
    };
    let mut table: Vec<[String; 5]> =
        vec![["TENANT".into(), "INGESTED".into(), "LOG".into(), "AUDITS".into(), "STATE".into()]];
    for row in rows {
        let name = row.get("tenant").and_then(Json::as_str).unwrap_or("?");
        let default = row.get("default") == Some(&Json::Bool(true));
        let tenant = if default { format!("{name} *") } else { name.to_string() };
        let count = |key: &str| {
            row.get(key).and_then(Json::as_int).map_or_else(|| "-".to_string(), |v| v.to_string())
        };
        let state = if row.get("degraded") == Some(&Json::Bool(true)) {
            let why = row.get("error").and_then(Json::as_str).unwrap_or("");
            format!("degraded: {why}")
        } else if row.get("busy") == Some(&Json::Bool(true)) {
            "busy".into()
        } else if row.get("journal_wedged").is_some_and(|w| *w != Json::Null) {
            "wedged".into()
        } else if row.get("durable") == Some(&Json::Bool(true)) {
            "durable".into()
        } else {
            "ephemeral".into()
        };
        table.push([
            tenant,
            count("queries_ingested"),
            count("log_len"),
            count("registered_audits"),
            state,
        ]);
    }
    let mut widths = [0usize; 5];
    for row in &table {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    for row in &table {
        let mut line = String::new();
        for (i, (cell, width)) in row.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            if i + 1 < row.len() {
                line.push_str(&" ".repeat(width - cell.len()));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::Timestamp;

    fn fresh_core() -> ServiceCore {
        ServiceCore::new(Database::new(), ServiceConfig::default())
    }

    fn log_line(ts: i64, sql: &str) -> Request {
        Request::Log {
            ts: Timestamp(ts),
            user: "u".into(),
            role: "r".into(),
            purpose: "p".into(),
            sql: sql.into(),
        }
    }

    fn seed(shard: &Shard) {
        let r = shard.lock().handle(Request::Dml {
            ts: Timestamp(100),
            sql: "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT); \
                  INSERT INTO Patients VALUES ('p1', '120016', 'cancer');"
                .into(),
        });
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);
    }

    #[test]
    fn routing_isolates_tenants() {
        let fleet = ShardMap::single(fresh_core());
        assert_eq!(fleet.default_tenant(), DEFAULT_TENANT);
        let created = fleet.create_tenant("acme");
        assert_eq!(created.get("ok"), Some(&Json::Bool(true)), "{created}");
        assert_eq!(fleet.tenant_count(), 2);

        // Seed only acme; the default tenant must not see its table.
        let acme = fleet.resolve(Some("acme")).unwrap();
        seed(&acme);
        let r = acme.lock().handle(log_line(200, "SELECT disease FROM Patients"));
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);

        let default = fleet.resolve(None).unwrap();
        let r = default.lock().handle(log_line(200, "SELECT disease FROM Patients"));
        assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)));
        // Unknown table on the default shard: indexed as skipped, proving
        // acme's DML is invisible here.
        let stats = default.lock().handle(Request::Stats).response;
        assert_eq!(stats.get("index_skipped").and_then(Json::as_int), Some(1), "{stats}");
        let stats = acme.lock().handle(Request::Stats).response;
        assert_eq!(stats.get("index_skipped").and_then(Json::as_int), Some(0), "{stats}");

        // Addressing the default tenant by name hits the same shard.
        let by_name = fleet.resolve(Some(DEFAULT_TENANT)).unwrap();
        assert!(Arc::ptr_eq(&default, &by_name));
        assert!(fleet.resolve(Some("ghost")).unwrap_err().contains("unknown tenant"));
    }

    #[test]
    fn fleet_ops_route_inline_and_data_plane_routes_to_shards() {
        let fleet = ShardMap::single(fresh_core());
        match fleet.route(None, Request::CreateTenant { name: "t1".into() }) {
            Routed::Reply(r) => assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}"),
            _ => panic!("create-tenant must be answered by the fleet"),
        }
        match fleet.route(Some("t1"), Request::Stats) {
            Routed::Shard(shard, Request::Stats) => assert_eq!(shard.id().name(), "t1"),
            _ => panic!("stats must route to the addressed shard"),
        }
        match fleet.route(Some("nope"), Request::Stats) {
            Routed::Reply(r) => {
                assert!(r.get("error").and_then(Json::as_str).unwrap().contains("unknown tenant"))
            }
            _ => panic!("unknown tenant must be a structured reply"),
        }
        match fleet.route(None, Request::Shutdown) {
            Routed::Shutdown(r) => {
                assert_eq!(r.to_string(), r#"{"ok":true,"stopping":true}"#);
            }
            _ => panic!("shutdown is fleet-scoped"),
        }
        // Frozen after shutdown: the control plane refuses.
        let r = fleet.create_tenant("late");
        assert!(r.get("error").and_then(Json::as_str).unwrap().contains("shutting down"));
    }

    #[test]
    fn stats_all_skips_a_held_shard_without_blocking() {
        let fleet = ShardMap::single(fresh_core());
        fleet.create_tenant("healthy");
        fleet.create_tenant("stuck");
        let stuck = fleet.resolve(Some("stuck")).unwrap();
        let guard = stuck.lock(); // simulate a wedged / long-running request
        let stats = fleet.stats_all();
        drop(guard);
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("busy_tenants").and_then(Json::as_int), Some(1), "{stats}");
        let rows = stats.get("tenants").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 3);
        let row = |name: &str| {
            rows.iter().find(|r| r.get("tenant") == Some(&Json::from(name))).unwrap().clone()
        };
        assert_eq!(row("stuck").get("busy"), Some(&Json::Bool(true)));
        assert_eq!(row("healthy").get("ok"), Some(&Json::Bool(true)));
        assert_eq!(row(DEFAULT_TENANT).get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn audit_all_fans_out_with_per_tenant_isolation() {
        let fleet = ShardMap::single(fresh_core());
        fleet.create_tenant("a");
        fleet.create_tenant("b");
        for tenant in ["a", "b"] {
            let shard = fleet.resolve(Some(tenant)).unwrap();
            seed(&shard);
            let r = shard.lock().handle(Request::Register {
                name: "watch".into(),
                expr: "AUDIT disease FROM Patients WHERE zipcode = '120016'".into(),
                now: Some(Timestamp(5000)),
            });
            assert_eq!(r.response.get("ok"), Some(&Json::Bool(true)), "{}", r.response);
        }
        // Only tenant a gets the suspicious query.
        let a = fleet.resolve(Some("a")).unwrap();
        a.lock().handle(log_line(200, "SELECT disease FROM Patients WHERE zipcode = '120016'"));

        let all = fleet.audit_all("watch");
        assert_eq!(all.get("ok"), Some(&Json::Bool(true)), "{all}");
        let rows = all.get("tenants").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2, "{all}");
        let row = |name: &str| {
            rows.iter().find(|r| r.get("tenant") == Some(&Json::from(name))).unwrap().clone()
        };
        assert_eq!(row("a").get("suspicious"), Some(&Json::Bool(true)), "{all}");
        assert_eq!(row("b").get("suspicious"), Some(&Json::Bool(false)), "{all}");
        // The default tenant never registered the audit: skipped.
        assert_eq!(all.get("skipped"), Some(&Json::Arr(vec![Json::from(DEFAULT_TENANT)])), "{all}");
    }

    #[test]
    fn drop_tenant_guards_the_default_and_unknowns() {
        let fleet = ShardMap::single(fresh_core());
        let r = fleet.drop_tenant(DEFAULT_TENANT);
        assert!(r.get("error").and_then(Json::as_str).unwrap().contains("default"));
        let r = fleet.drop_tenant("ghost");
        assert!(r.get("error").and_then(Json::as_str).unwrap().contains("unknown"));
        fleet.create_tenant("ephemeral");
        let r = fleet.drop_tenant("ephemeral");
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
        assert_eq!(r.get("retired"), Some(&Json::Null));
        assert_eq!(fleet.tenant_count(), 1);
        assert!(fleet.resolve(Some("ephemeral")).is_err());
    }

    #[test]
    fn tenant_table_renders_aligned_rows() {
        let fleet = ShardMap::single(fresh_core());
        fleet.create_tenant("acme");
        let table = render_tenant_table(&fleet.list_tenants());
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "{table}");
        assert!(lines[0].starts_with("TENANT"));
        assert!(lines[1].starts_with("acme "), "{table}");
        assert!(lines[2].starts_with("default *"), "{table}");
        assert!(lines[1].contains("ephemeral"));
    }

    #[test]
    fn metrics_all_labels_tenant_series_in_the_fleet_registry() {
        let fleet = ShardMap::single(fresh_core());
        fleet.create_tenant("acme");
        let acme = fleet.resolve(Some("acme")).unwrap();
        seed(&acme);
        acme.lock().handle(log_line(200, "SELECT disease FROM Patients"));
        let m = fleet.metrics_all();
        let text = m.get("metrics").and_then(Json::as_str).unwrap();
        assert!(text.contains(r#"audex_tenant_queries_ingested_total{tenant="acme"} 1"#), "{text}");
        assert!(
            text.contains(r#"audex_tenant_queries_ingested_total{tenant="default"} 0"#),
            "{text}"
        );
    }
}
