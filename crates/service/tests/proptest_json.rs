//! Property test: the hand-rolled wire JSON round-trips through its own
//! printer and parser, and printing is a fixed point (render → parse →
//! render is byte-identical). The wire protocol and the durable-store
//! tooling both compare response lines byte-for-byte, so this is the
//! invariant everything else leans on.

use audex_service::Json;
use proptest::prelude::*;

/// Characters that exercise every printer path: escapes, control bytes,
/// multi-byte UTF-8, and a surrogate-pair scalar.
const CHARS: [char; 14] =
    ['a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', 'é', '\u{2603}', '\u{1f914}'];

fn string_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARS.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| CHARS[i]).collect())
}

/// Finite floats with a guaranteed fractional part. A float that prints
/// without a `.` (e.g. `3`) reparses as `Json::Int`, which is a faithful
/// value round-trip but not a *variant* round-trip; excluding it keeps the
/// assertion exact. `k/1024` is dyadic, so the sum is exact in binary and
/// Rust's shortest-round-trip `Display` reproduces the same bits.
fn float_strategy() -> impl Strategy<Value = f64> {
    (-1_000_000i64..1_000_000, 1u32..1024)
        .prop_map(|(whole, frac)| whole as f64 + f64::from(frac) / 1024.0)
}

fn json_strategy() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        float_strategy().prop_map(Json::Float),
        string_strategy().prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Json::Arr),
            proptest::collection::vec((string_strategy(), inner), 0..5).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_then_parse_is_identity(v in json_strategy()) {
        let text = v.to_string();
        let back = match Json::parse(&text) {
            Ok(back) => back,
            Err(e) => return Err(format!("reparse of {text:?} failed: {e}")),
        };
        prop_assert_eq!(&back, &v, "value drifted through {}", text);
        // Printing is canonical: a second round produces the same bytes.
        prop_assert_eq!(back.to_string(), text);
    }
}
