//! Property test: the front door's line framing survives adversarial byte
//! noise. Random sessions — valid requests, printable garbage, truncated
//! UTF-8, interleaved carriage returns, oversized lines — are written to a
//! live server in randomly split chunks. The invariant under all of it:
//! every newline-terminated frame with non-whitespace content gets exactly
//! one response line, whitespace-only frames get none, the connection
//! stays usable afterwards, and the server never panics or wedges
//! (enforced with a hard read deadline on the client side).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use audex_service::state::{ServiceConfig, ServiceCore};
use audex_service::{FrontDoorConfig, Json, Server};
use proptest::prelude::*;

const MAX_LINE: usize = 512;

/// One shared in-process server for every proptest case; each case opens
/// its own connection.
fn server_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let core = ServiceCore::new(audex_storage::Database::new(), ServiceConfig::default());
        let cfg = FrontDoorConfig { max_line_bytes: MAX_LINE, ..Default::default() };
        let server = Server::bind_with(core, "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr().expect("local addr").to_string();
        std::thread::spawn(move || {
            let _ = server.run();
        });
        addr
    })
}

/// One frame of a hostile session: the payload bytes (newline appended by
/// the harness) and whether the server owes a response line for it.
#[derive(Debug, Clone)]
struct Frame {
    payload: Vec<u8>,
    answered: bool,
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    // Building blocks for garbage payloads: printable noise, JSON-ish
    // punctuation, carriage returns, and truncated multi-byte UTF-8.
    let garbage_byte = prop_oneof![
        b'a'..=b'z',
        Just(b'{'),
        Just(b'}'),
        Just(b'"'),
        Just(b':'),
        Just(b' '),
        Just(b'\r'),
        Just(0xC3u8), // lead byte of a 2-byte sequence, often left dangling
        Just(0xE2u8), // lead byte of a 3-byte sequence
        Just(0x98u8), // bare continuation byte
    ];
    prop_oneof![
        // A valid request, possibly about to be delivered torn.
        Just(Frame { payload: br#"{"cmd":"stats"}"#.to_vec(), answered: true }),
        Just(Frame { payload: br#"{"cmd":"metrics"}"#.to_vec(), answered: true }),
        // Garbage: answered with a structured error unless it trims to
        // nothing (whitespace-only frames are skipped by design).
        proptest::collection::vec(garbage_byte, 0..24).prop_map(|payload| {
            let text = String::from_utf8_lossy(&payload).into_owned();
            Frame { answered: !text.trim().is_empty(), payload }
        }),
        // Oversized: rejected with a structured error, stream resynced.
        (MAX_LINE + 1..MAX_LINE + 64)
            .prop_map(|n| Frame { payload: vec![b'x'; n], answered: true }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hostile_sessions_always_get_answers(
        frames in proptest::collection::vec(frame_strategy(), 0..12),
        chunk in 1usize..16,
    ) {
        let stream = TcpStream::connect(server_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("deadline");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);

        let mut session: Vec<u8> = Vec::new();
        for frame in &frames {
            session.extend_from_slice(&frame.payload);
            session.push(b'\n');
        }
        // Split writes: the bytes arrive in arbitrary fragments, never
        // aligned with frame boundaries.
        for piece in session.chunks(chunk) {
            writer.write_all(piece).expect("write chunk");
            writer.flush().expect("flush chunk");
        }

        let expected = frames.iter().filter(|f| f.answered).count();
        for i in 0..expected {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read response");
            prop_assert!(n > 0, "connection closed after {i} of {expected} responses");
            prop_assert!(
                Json::parse(line.trim()).is_ok(),
                "response {i} is not JSON: {line:?}"
            );
        }

        // The connection survived the abuse: a clean request still works.
        writer.write_all(b"{\"cmd\":\"stats\"}\n").expect("write probe");
        writer.flush().expect("flush probe");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read probe response");
        let v = match Json::parse(line.trim()) {
            Ok(v) => v,
            Err(e) => return Err(format!("probe response not JSON: {line:?}: {e}")),
        };
        prop_assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "probe failed: {}", v);
    }

    /// The wire parser itself never panics on arbitrary input, complete
    /// with invalid UTF-8 replacement characters.
    #[test]
    fn parse_request_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = audex_service::parse_request(text.trim());
        let _ = Json::parse(&text);
    }
}
