//! Seeded update streams: exercise the backlog / DATA-INTERVAL machinery.

use audex_sql::{Ident, Timestamp};
use audex_storage::{Database, Tid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datagen::{disease_name, zip_of_zone, HospitalConfig, HEALTH, PATIENTS};

/// Shape of the update stream.
#[derive(Debug, Clone, Copy)]
pub struct UpdateStreamConfig {
    /// Number of updates to apply.
    pub updates: usize,
    /// First update timestamp; updates are spaced `spacing` seconds apart.
    pub start: Timestamp,
    /// Seconds between consecutive updates.
    pub spacing: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        UpdateStreamConfig { updates: 100, start: Timestamp(10_000), spacing: 10, seed: 11 }
    }
}

/// Applies a stream of zipcode/disease updates to a generated hospital.
/// Returns the timestamps applied (ascending). Deterministic in the seed.
pub fn apply_update_stream(
    db: &mut Database,
    hospital: &HospitalConfig,
    cfg: &UpdateStreamConfig,
) -> Vec<Timestamp> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let patients = Ident::new(PATIENTS);
    let health = Ident::new(HEALTH);
    let n = db.table(&patients).map_or(0, |t| t.len()) as u64;
    let mut applied = Vec::with_capacity(cfg.updates);
    for i in 0..cfg.updates {
        let ts = cfg.start.plus_seconds(i as i64 * cfg.spacing);
        let tid = Tid(rng.gen_range(0..n.max(1)) + 1);
        if rng.gen_bool(0.5) {
            // Move a patient to a random zone.
            if let Some(row) = db.table(&patients).and_then(|t| t.get(tid)).cloned() {
                let mut new_row = row;
                new_row[3] = Value::Str(zip_of_zone(rng.gen_range(0..hospital.zip_zones.max(1))));
                db.update_row(&patients, tid, new_row, ts).expect("update patient");
            }
        } else {
            // Re-diagnose a patient.
            if let Some(row) = db.table(&health).and_then(|t| t.get(tid)).cloned() {
                let mut new_row = row;
                new_row[2] = Value::Str(disease_name(rng.gen_range(0..hospital.diseases.max(1))));
                db.update_row(&health, tid, new_row, ts).expect("update health");
            }
        }
        applied.push(ts);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::generate_hospital;

    #[test]
    fn updates_create_versions() {
        let h = HospitalConfig { patients: 50, ..Default::default() };
        let mut db = generate_hospital(&h, Timestamp(0));
        let cfg = UpdateStreamConfig { updates: 20, ..Default::default() };
        let applied = apply_update_stream(&mut db, &h, &cfg);
        assert_eq!(applied.len(), 20);
        let versions = db.versions_in(&[], Timestamp(0), Timestamp(1_000_000));
        // t0 load + some distinct update instants.
        assert!(versions.len() > 10, "{versions:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let h = HospitalConfig { patients: 30, ..Default::default() };
        let cfg = UpdateStreamConfig { updates: 15, ..Default::default() };
        let mut a = generate_hospital(&h, Timestamp(0));
        let mut b = generate_hospital(&h, Timestamp(0));
        apply_update_stream(&mut a, &h, &cfg);
        apply_update_stream(&mut b, &h, &cfg);
        let t = Ident::new(PATIENTS);
        assert_eq!(
            a.table(&t).unwrap().to_relation().rows,
            b.table(&t).unwrap().to_relation().rows
        );
    }

    #[test]
    fn old_state_reconstructable_after_updates() {
        let h = HospitalConfig { patients: 30, ..Default::default() };
        let mut db = generate_hospital(&h, Timestamp(0));
        let before = db.table(&Ident::new(PATIENTS)).unwrap().to_relation();
        apply_update_stream(&mut db, &h, &UpdateStreamConfig { updates: 25, ..Default::default() });
        let replayed = {
            use audex_storage::RelationProvider;
            db.at(Timestamp(0)).relation(&Ident::new(PATIENTS)).unwrap()
        };
        assert_eq!(before.rows, replayed.rows);
    }
}
