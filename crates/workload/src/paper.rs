//! The paper's canonical running example: relations P-Personal, P-Health,
//! P-Employ (Tables 1–3) and the audit expressions of Figures 1–7.
//!
//! The paper's Table 1 is partially garbled in the published text; the
//! missing cells are reconstructed from Tables 4–5 and the granule sets of
//! Figures 4–6, which pin down every value that matters:
//!
//! * Table 4 (`age < 30`) lists t11 Jane 25 A1, t13 Robert 29 A3,
//!   t14 Lucy 20 A4 — so Reku (t12) is 30 or older; we use 35.
//! * Fig. 4's granule set gives t12 = (p2, Reku, M, 145568, A2) and
//!   t22 = (p2, W12, Nicholas, diabetic, drug1), t32 = (p2, E2, 20000).
//! * Table 1's zipcode column shows 177893 / 145568 / 188888 / 145568.
//!
//! Cells that no constraint pins (sex of t11/t13, t21/t23 details, t31/t33
//! employers) get plausible values consistent with every worked example.

use audex_log::{AccessContext, QueryLog};
use audex_policy::{ColumnScope, PrivacyPolicy};
use audex_sql::ast::TypeName;
use audex_sql::{Ident, Timestamp};
use audex_storage::{Database, Schema, Tid, Value};

/// The instant at which the paper's data is loaded.
pub fn paper_epoch() -> Timestamp {
    Timestamp::from_ymd(2008, 1, 1).expect("valid date")
}

/// A reference "now" for audits over the paper dataset (well after the
/// data and all example queries).
pub fn paper_now() -> Timestamp {
    Timestamp::from_ymd(2008, 4, 7).expect("valid date")
}

/// Fig. 1: the audit expression syntax of Agrawal et al. (example instance).
pub const FIG1_AGRAWAL: &str = "OTHERTHAN PURPOSE marketing DURING 1/1/2008 TO 1/4/2008 \
     AUDIT disease FROM P-Health WHERE ward = 'W14'";

/// Fig. 2: Audit Expression-1.
pub const FIG2_AUDIT_EXPRESSION_1: &str = "Audit name, age, address FROM P-Personal WHERE age < 30";

/// Fig. 3: Audit Expression-2.
pub const FIG3_AUDIT_EXPRESSION_2: &str = "Audit name, disease, address \
     FROM P-Personal, P-Health, P-Employ \
     WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
           P-Personal.zipcode=145568 and P-Employ.salary > 10000 and \
           P-Health.disease='diabetic'";

/// Fig. 4: the perfect-privacy encoding.
pub const FIG4_PERFECT_PRIVACY: &str = "INDISPENSABLE true \
     AUDIT [*] FROM P-Personal, P-Health, P-Employ \
     WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
           P-Personal.zipcode='145568' and P-Employ.salary > 10000 and \
           P-Health.disease='diabetic' and P-Personal.name='Reku'";

/// Fig. 5: the weak-syntactic-suspicion encoding.
pub const FIG5_WEAK_SYNTACTIC: &str = "INDISPENSABLE true \
     AUDIT [name, disease, address, P-Personal.pid, P-Health.pid, P-Employ.pid, zipcode, salary] \
     FROM P-Personal, P-Health, P-Employ \
     WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
           P-Personal.zipcode='145568' and P-Employ.salary > 10000 and \
           P-Health.disease='diabetic'";

/// Fig. 6: the semantic-suspiciousness (indispensable tuple) encoding.
pub const FIG6_SEMANTIC: &str = "INDISPENSABLE true \
     AUDIT (name, disease, address) FROM P-Personal, P-Health, P-Employ \
     WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
           P-Personal.zipcode='145568' and P-Employ.salary > 10000 and \
           P-Health.disease='diabetic'";

/// Fig. 7: an instance exercising every clause of the full grammar.
pub const FIG7_FULL_GRAMMAR: &str = "Neg-Role-Purpose (nurse, billing) (-, marketing) \
     Pos-Role-Purpose (doctor, -) \
     Neg-User-Identity u-13 \
     Pos-User-Identity u-7, u-9 \
     DURING 1/1/2008 TO now() \
     DATA-INTERVAL 1/1/2008 TO now() \
     THRESHOLD 1 \
     INDISPENSABLE true \
     AUDIT (name), [disease, address] FROM P-Personal, P-Health \
     WHERE P-Personal.pid = P-Health.pid";

/// §3.1's DATA-INTERVAL example over the backlog table.
pub const SEC31_DATA_INTERVAL: &str = "DATA-INTERVAL 1/5/2004:13-00-00 to now() \
     Audit name, age, address From b-P-Personal Where age < 30";

/// §2.1's first example (Agrawal et al.): audit + suspicious query pair.
pub const SEC21_AUDIT_DISEASE: &str = "AUDIT disease FROM Patients WHERE zipcode='120016'";
/// §2.1: the query suspicious w.r.t. [`SEC21_AUDIT_DISEASE`].
pub const SEC21_QUERY: &str = "SELECT zipcode FROM Patients WHERE disease='cancer'";
/// §2.1: the audit the same query is *not* suspicious w.r.t.
pub const SEC21_AUDIT_ZIPCODE: &str = "AUDIT zipcode FROM Patients WHERE disease='diabetes'";

/// Expected granule set for Fig. 4 as printed in the paper (13 cells; the
/// paper omits Reku's age cell `(t12,35)`, which a faithful `[*]` expansion
/// also produces — see EXPERIMENTS.md E6).
pub const FIG4_EXPECTED_PAPER: &[&str] = &[
    "(t12,p2)",
    "(t22,p2)",
    "(t32,p2)",
    "(t12,145568)",
    "(t12,M)",
    "(t12,A2)",
    "(t12,Reku)",
    "(t22,W12)",
    "(t22,Nicholas)",
    "(t22,diabetic)",
    "(t22,drug1)",
    "(t32,E2)",
    "(t32,20000)",
];

/// The cell the paper's Fig. 4 set omits but its model implies.
pub const FIG4_IMPLIED_EXTRA: &str = "(t12,35)";

/// Expected granule set for Fig. 5 (16 pairs; the paper's bare `(t32)` is a
/// typographical artifact — see EXPERIMENTS.md E7).
pub const FIG5_EXPECTED_PAPER: &[&str] = &[
    "(t12,p2)",
    "(t12,145568)",
    "(t12,Reku)",
    "(t12,A2)",
    "(t14,p28)",
    "(t14,145568)",
    "(t14,Lucy)",
    "(t14,A4)",
    "(t22,diabetic)",
    "(t24,diabetic)",
    "(t32,20000)",
    "(t34,19000)",
    "(t22,p2)",
    "(t32,p2)",
    "(t24,p28)",
    "(t34,p28)",
];

/// Expected granule set for Fig. 6.
pub const FIG6_EXPECTED_PAPER: &[&str] =
    &["(t12,t22,Reku,diabetic,A2)", "(t14,t24,Lucy,diabetic,A4)"];

/// Builds the paper's three relations with the paper's tuple ids.
pub fn paper_database() -> Database {
    let ts = paper_epoch();
    let mut db = Database::new();

    let personal = Ident::new("P-Personal");
    db.create_table(
        personal.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("name", TypeName::Text),
            ("age", TypeName::Int),
            ("sex", TypeName::Text),
            ("zipcode", TypeName::Text),
            ("address", TypeName::Text),
        ]),
        ts,
    )
    .expect("create P-Personal");
    let personal_rows: [(u64, &str, &str, i64, &str, &str, &str); 4] = [
        (11, "p1", "Jane", 25, "F", "177893", "A1"),
        (12, "p2", "Reku", 35, "M", "145568", "A2"),
        (13, "p13", "Robert", 29, "M", "188888", "A3"),
        (14, "p28", "Lucy", 20, "F", "145568", "A4"),
    ];
    for (tid, pid, name, age, sex, zip, addr) in personal_rows {
        db.insert_with_tid(
            &personal,
            Tid(tid),
            vec![pid.into(), name.into(), Value::Int(age), sex.into(), zip.into(), addr.into()],
            ts,
        )
        .expect("insert P-Personal row");
    }

    let health = Ident::new("P-Health");
    db.create_table(
        health.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("ward", TypeName::Text),
            ("doc-name", TypeName::Text),
            ("disease", TypeName::Text),
            ("pres-drugs", TypeName::Text),
        ]),
        ts,
    )
    .expect("create P-Health");
    let health_rows: [(u64, &str, &str, &str, &str, &str); 4] = [
        (21, "p1", "W11", "Hassan", "flu", "drug2"),
        (22, "p2", "W12", "Nicholas", "diabetic", "drug1"),
        (23, "p13", "W14", "Ramesh", "Malaria", "drug3"),
        (24, "p28", "W14", "King U", "diabetic", "drug1"),
    ];
    for (tid, pid, ward, doc, disease, drugs) in health_rows {
        db.insert_with_tid(
            &health,
            Tid(tid),
            vec![pid.into(), ward.into(), doc.into(), disease.into(), drugs.into()],
            ts,
        )
        .expect("insert P-Health row");
    }

    let employ = Ident::new("P-Employ");
    db.create_table(
        employ.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("employer", TypeName::Text),
            ("salary", TypeName::Int),
        ]),
        ts,
    )
    .expect("create P-Employ");
    let employ_rows: [(u64, &str, &str, i64); 4] = [
        (31, "p1", "E1", 12000),
        (32, "p2", "E2", 20000),
        (33, "p13", "E3", 9000),
        (34, "p28", "E4", 19000),
    ];
    for (tid, pid, employer, salary) in employ_rows {
        db.insert_with_tid(
            &employ,
            Tid(tid),
            vec![pid.into(), employer.into(), Value::Int(salary)],
            ts,
        )
        .expect("insert P-Employ row");
    }

    db
}

/// The §2.1 `Patients` table (zipcode/disease example) added to a database.
pub fn with_section21_patients(db: &mut Database) {
    let ts = db.last_ts();
    let patients = Ident::new("Patients");
    db.create_table(
        patients.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("zipcode", TypeName::Text),
            ("disease", TypeName::Text),
        ]),
        ts,
    )
    .expect("create Patients");
    for (pid, zip, disease) in [
        ("q1", "120016", "cancer"),
        ("q2", "120016", "flu"),
        ("q3", "145568", "diabetes"),
        ("q4", "188888", "cancer"),
    ] {
        db.insert(&patients, vec![pid.into(), zip.into(), disease.into()], ts)
            .expect("insert Patients row");
    }
}

/// A Hippocratic policy for the paper's hospital: doctors treat, nurses
/// assist on their ward, billing clerks see employment, marketing sees
/// nothing sensitive.
pub fn paper_policy() -> PrivacyPolicy {
    let mut p = PrivacyPolicy::new();
    p.purposes.declare("healthcare");
    p.purposes.declare_under("treatment", "healthcare");
    p.purposes.declare_under("billing", "healthcare");
    p.purposes.declare("marketing");
    p.users.register("u-7", vec![Ident::new("doctor")]);
    p.users.register("u-9", vec![Ident::new("doctor"), Ident::new("auditor")]);
    p.users.register("u-13", vec![Ident::new("nurse")]);
    p.users.register("u-21", vec![Ident::new("clerk")]);
    p.allow("doctor", "healthcare", "P-Personal", ColumnScope::All);
    p.allow("doctor", "healthcare", "P-Health", ColumnScope::All);
    p.allow("nurse", "treatment", "P-Health", ColumnScope::only(["pid", "ward", "disease"]));
    p.allow("clerk", "billing", "P-Employ", ColumnScope::All);
    p.allow("clerk", "billing", "P-Personal", ColumnScope::only(["pid", "name", "address"]));
    p
}

/// A small example query log over the paper's tables: a compliant doctor, a
/// snooping nurse, and a marketing clerk.
pub fn paper_query_log() -> QueryLog {
    let log = QueryLog::new();
    let t0 = paper_epoch().plus_seconds(3600);
    log.record_text(
        "SELECT name, disease FROM P-Personal, P-Health \
         WHERE P-Personal.pid = P-Health.pid AND ward = 'W14'",
        t0,
        AccessContext::new("u-7", "doctor", "treatment"),
    )
    .expect("doctor query parses");
    log.record_text(
        "SELECT name, address FROM P-Personal WHERE zipcode = '145568'",
        t0.plus_seconds(600),
        AccessContext::new("u-13", "nurse", "treatment"),
    )
    .expect("nurse query parses");
    log.record_text(
        "SELECT disease FROM P-Health WHERE pid = 'p2'",
        t0.plus_seconds(1200),
        AccessContext::new("u-13", "nurse", "treatment"),
    )
    .expect("nurse query 2 parses");
    log.record_text(
        "SELECT name FROM P-Personal WHERE age > 30",
        t0.plus_seconds(1800),
        AccessContext::new("u-21", "clerk", "marketing"),
    )
    .expect("clerk query parses");
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::{parse_audit, parse_query};

    #[test]
    fn all_figures_parse() {
        for text in [
            FIG1_AGRAWAL,
            FIG2_AUDIT_EXPRESSION_1,
            FIG3_AUDIT_EXPRESSION_2,
            FIG4_PERFECT_PRIVACY,
            FIG5_WEAK_SYNTACTIC,
            FIG6_SEMANTIC,
            FIG7_FULL_GRAMMAR,
            SEC31_DATA_INTERVAL,
            SEC21_AUDIT_DISEASE,
            SEC21_AUDIT_ZIPCODE,
        ] {
            parse_audit(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
        parse_query(SEC21_QUERY).unwrap();
    }

    #[test]
    fn dataset_has_paper_tids() {
        let db = paper_database();
        let t = db.table(&Ident::new("P-Personal")).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(Tid(12)).unwrap()[1], Value::Str("Reku".into()));
        let h = db.table(&Ident::new("P-Health")).unwrap();
        assert_eq!(h.get(Tid(24)).unwrap()[3], Value::Str("diabetic".into()));
        let e = db.table(&Ident::new("P-Employ")).unwrap();
        assert_eq!(e.get(Tid(32)).unwrap()[2], Value::Int(20000));
    }

    #[test]
    fn policy_is_consistent() {
        let p = paper_policy();
        let denials = p.check_access(
            &Ident::new("u-7"),
            &Ident::new("doctor"),
            &Ident::new("treatment"),
            &[(Ident::new("P-Health"), Ident::new("disease"))],
        );
        assert!(denials.is_empty());
        let denials = p.check_access(
            &Ident::new("u-13"),
            &Ident::new("nurse"),
            &Ident::new("treatment"),
            &[(Ident::new("P-Personal"), Ident::new("address"))],
        );
        assert!(!denials.is_empty(), "the nurse's address query violates policy");
    }

    #[test]
    fn log_has_four_entries() {
        assert_eq!(paper_query_log().len(), 4);
    }
}
