//! Seeded synthetic hospital databases for the scalability benchmarks.
//!
//! The paper publishes no measured workload, so the performance study (B1–B7
//! in DESIGN.md) runs on deterministic synthetic data shaped like the
//! paper's running example: `Patients` / `Health` / `Employ` relations keyed
//! by `pid`, with a configurable number of zip-code zones so audit
//! selectivity can be swept.

use audex_sql::ast::TypeName;
use audex_sql::{Ident, Timestamp};
use audex_storage::{Database, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the synthetic hospital.
#[derive(Debug, Clone, Copy)]
pub struct HospitalConfig {
    /// Number of patients (rows per table).
    pub patients: usize,
    /// Number of distinct zip codes; audit selectivity ≈ 1/zones.
    pub zip_zones: usize,
    /// Number of distinct diseases.
    pub diseases: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        HospitalConfig { patients: 1_000, zip_zones: 20, diseases: 12, seed: 42 }
    }
}

/// Fixed names for the generated tables.
pub const PATIENTS: &str = "Patients";
/// Health-record table name.
pub const HEALTH: &str = "Health";
/// Employment table name.
pub const EMPLOY: &str = "Employ";

/// The zip code of zone `z` (zone 0 is the conventional audit target).
pub fn zip_of_zone(z: usize) -> String {
    format!("1{:05}", z)
}

/// The disease label `d`.
pub fn disease_name(d: usize) -> String {
    format!("disease-{d}")
}

/// Generates the hospital database at `t0`. Deterministic in the seed.
pub fn generate_hospital(cfg: &HospitalConfig, t0: Timestamp) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();

    let patients = Ident::new(PATIENTS);
    db.create_table(
        patients.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("name", TypeName::Text),
            ("age", TypeName::Int),
            ("zipcode", TypeName::Text),
            ("address", TypeName::Text),
        ]),
        t0,
    )
    .expect("create Patients");

    let health = Ident::new(HEALTH);
    db.create_table(
        health.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("ward", TypeName::Text),
            ("disease", TypeName::Text),
            ("drug", TypeName::Text),
        ]),
        t0,
    )
    .expect("create Health");

    let employ = Ident::new(EMPLOY);
    db.create_table(
        employ.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("employer", TypeName::Text),
            ("salary", TypeName::Int),
        ]),
        t0,
    )
    .expect("create Employ");

    for i in 0..cfg.patients {
        let pid = format!("p{i}");
        let zone = rng.gen_range(0..cfg.zip_zones.max(1));
        let disease = rng.gen_range(0..cfg.diseases.max(1));
        db.insert(
            &patients,
            vec![
                pid.clone().into(),
                format!("name-{i}").into(),
                Value::Int(rng.gen_range(18..95)),
                zip_of_zone(zone).into(),
                format!("addr-{i}").into(),
            ],
            t0,
        )
        .expect("insert patient");
        db.insert(
            &health,
            vec![
                pid.clone().into(),
                format!("W{}", rng.gen_range(1..20)).into(),
                disease_name(disease).into(),
                format!("drug-{}", rng.gen_range(0..30)).into(),
            ],
            t0,
        )
        .expect("insert health");
        db.insert(
            &employ,
            vec![
                pid.into(),
                format!("E{}", rng.gen_range(1..50)).into(),
                Value::Int(rng.gen_range(5_000..50_000)),
            ],
            t0,
        )
        .expect("insert employ");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = HospitalConfig { patients: 50, ..Default::default() };
        let a = generate_hospital(&cfg, Timestamp(0));
        let b = generate_hospital(&cfg, Timestamp(0));
        let t = Ident::new(PATIENTS);
        assert_eq!(
            a.table(&t).unwrap().to_relation().rows,
            b.table(&t).unwrap().to_relation().rows
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_hospital(
            &HospitalConfig { patients: 50, seed: 1, ..Default::default() },
            Timestamp(0),
        );
        let b = generate_hospital(
            &HospitalConfig { patients: 50, seed: 2, ..Default::default() },
            Timestamp(0),
        );
        let t = Ident::new(PATIENTS);
        assert_ne!(
            a.table(&t).unwrap().to_relation().rows,
            b.table(&t).unwrap().to_relation().rows
        );
    }

    #[test]
    fn row_counts_match_config() {
        let db = generate_hospital(
            &HospitalConfig { patients: 120, ..Default::default() },
            Timestamp(0),
        );
        for t in [PATIENTS, HEALTH, EMPLOY] {
            assert_eq!(db.table(&Ident::new(t)).unwrap().len(), 120);
        }
    }

    #[test]
    fn zones_bound_zipcodes() {
        let db = generate_hospital(
            &HospitalConfig { patients: 200, zip_zones: 3, ..Default::default() },
            Timestamp(0),
        );
        let rel = db.table(&Ident::new(PATIENTS)).unwrap().to_relation();
        for (_, row) in &rel.rows {
            let zip = row[3].to_string();
            assert!((0..3).any(|z| zip == zip_of_zone(z)), "unexpected zipcode {zip}");
        }
    }
}
