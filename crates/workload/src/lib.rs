//! `audex-workload` — datasets and workload generators.
//!
//! * [`paper`] — the paper's canonical running example: Tables 1–3 with the
//!   paper's tuple ids, every audit expression of Figures 1–7, the worked
//!   §2.1 example, the expected granule sets, and a matching Hippocratic
//!   policy and query log.
//! * [`datagen`] / [`querygen`] / [`updategen`] — deterministic seeded
//!   generators (hospital databases, query mixes with planted-suspicious
//!   ground truth, update streams) for the scalability benchmarks, since
//!   the paper publishes no measured workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datagen;
pub mod paper;
pub mod querygen;
pub mod updategen;

pub use datagen::{generate_hospital, HospitalConfig};
pub use querygen::{
    batch_audit_text, batch_of, generate_batch_attack, generate_queries, load_log,
    standard_audit_text, GeneratedQuery, QueryMixConfig,
};
pub use updategen::{apply_update_stream, UpdateStreamConfig};
