//! Seeded query-log generation with a planted suspicious fraction.
//!
//! Each generated query is labelled with ground truth (`planted`) so that
//! benchmarks and soundness tests can compare what the auditor finds against
//! what the generator hid. Planted queries touch the audit target zone
//! (zone 0) and access the audited `disease` column; innocent queries roam
//! other zones and columns with predicates chosen to be pruneable or not.

use audex_log::{AccessContext, LoggedQuery, QueryId, QueryLog};
use audex_sql::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use crate::datagen::{zip_of_zone, HospitalConfig};

/// Shape of the generated log.
#[derive(Debug, Clone, Copy)]
pub struct QueryMixConfig {
    /// Number of queries.
    pub queries: usize,
    /// Fraction (0..=1) of queries planted as suspicious w.r.t. the
    /// standard audit (disease of zone-0 patients).
    pub suspicious_rate: f64,
    /// First execution timestamp; queries are spaced one second apart.
    pub start: Timestamp,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryMixConfig {
    fn default() -> Self {
        QueryMixConfig { queries: 200, suspicious_rate: 0.1, start: Timestamp(1_000), seed: 7 }
    }
}

/// A generated query plus its ground-truth label.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The SQL text.
    pub sql: String,
    /// Execution time.
    pub at: Timestamp,
    /// Annotations.
    pub context: AccessContext,
    /// True when the generator intended this query to be suspicious w.r.t.
    /// [`standard_audit_text`].
    pub planted: bool,
}

/// The audit expression the planted queries violate: disease information of
/// zone-0 patients, audited over all time.
pub fn standard_audit_text() -> String {
    format!(
        "DURING 1/1/1970 TO now() DATA-INTERVAL 1/1/1970 TO now() \
         AUDIT disease FROM Patients, Health \
         WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
        zip_of_zone(0)
    )
}

const ROLES: &[&str] = &["doctor", "nurse", "clerk", "researcher"];
const PURPOSES: &[&str] = &["treatment", "billing", "research", "marketing"];

/// Generates the query mix. Deterministic in the seed.
pub fn generate_queries(hospital: &HospitalConfig, cfg: &QueryMixConfig) -> Vec<GeneratedQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.queries);
    for i in 0..cfg.queries {
        let at = cfg.start.plus_seconds(i as i64);
        let planted = rng.gen_bool(cfg.suspicious_rate.clamp(0.0, 1.0));
        let context = AccessContext::new(
            format!("u{}", rng.gen_range(0..50)),
            ROLES[rng.gen_range(0..ROLES.len())],
            PURPOSES[rng.gen_range(0..PURPOSES.len())],
        );
        let sql = if planted {
            // Touches zone 0 and the disease column; three phrasings.
            match rng.gen_range(0..3u8) {
                0 => format!(
                    "SELECT disease FROM Patients, Health \
                     WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
                    zip_of_zone(0)
                ),
                1 => format!(
                    "SELECT name, disease FROM Patients, Health \
                     WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}' AND age > {}",
                    zip_of_zone(0),
                    rng.gen_range(18..40)
                ),
                // NOTE: a `disease = '<random>'` predicate here would make
                // the planted label data-dependent (no zone-0 patient may
                // have that disease — the paper's cancer/diabetes example),
                // so the third phrasing reads the column in the projection
                // behind a disjunction (which also exercises the candidate
                // analyzer's conservative OR handling).
                _ => format!(
                    "SELECT zipcode, disease FROM Patients, Health \
                     WHERE Patients.pid = Health.pid AND \
                     (Patients.zipcode = '{}' OR Patients.zipcode = '{}')",
                    zip_of_zone(0),
                    zip_of_zone(1 + rng.gen_range(0..hospital.zip_zones.saturating_sub(1).max(1)))
                ),
            }
        } else {
            // Innocent: other zones, other columns, or prune-ably disjoint.
            let other_zone = 1 + rng.gen_range(0..hospital.zip_zones.saturating_sub(1).max(1));
            match rng.gen_range(0..4u8) {
                0 => format!(
                    "SELECT name, address FROM Patients WHERE zipcode = '{}'",
                    zip_of_zone(other_zone)
                ),
                1 => format!(
                    "SELECT salary FROM Employ WHERE salary > {}",
                    rng.gen_range(10_000..40_000)
                ),
                2 => format!(
                    "SELECT disease FROM Patients, Health \
                     WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
                    zip_of_zone(other_zone)
                ),
                _ => format!(
                    "SELECT age FROM Patients WHERE age BETWEEN {} AND {}",
                    20,
                    20 + rng.gen_range(1..40)
                ),
            }
        };
        out.push(GeneratedQuery { sql, at, context, planted });
    }
    out
}

/// The audit the batch attacks of [`generate_batch_attack`] reconstruct:
/// `(name, disease)` of zone-0 patients, jointly mandatory.
pub fn batch_audit_text() -> String {
    format!(
        "DURING 1/1/1970 TO now() DATA-INTERVAL 1/1/1970 TO now() \
         AUDIT (name, disease) FROM Patients, Health \
         WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
        zip_of_zone(0)
    )
}

/// Generates `pairs` two-query batch attacks against [`batch_audit_text`]:
/// each pair's first query reads `name` of the target zone and the second
/// reads `disease`, split across two users — so **neither query alone** is
/// suspicious under the batch-semantic notion but each pair together is
/// (the Motwani et al. Definition 4 scenario). Returns the queries in
/// interleaved arrival order.
pub fn generate_batch_attack(cfg: &QueryMixConfig, pairs: usize) -> Vec<GeneratedQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xbead);
    let mut out = Vec::with_capacity(pairs * 2);
    for i in 0..pairs {
        let at = cfg.start.plus_seconds(2 * i as i64);
        let who = |n: usize| format!("u{}", n);
        out.push(GeneratedQuery {
            sql: format!(
                "SELECT name FROM Patients, Health \
                 WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}' AND age > {}",
                zip_of_zone(0),
                rng.gen_range(18..25)
            ),
            at,
            context: AccessContext::new(who(2 * i), "clerk", "billing"),
            planted: true,
        });
        out.push(GeneratedQuery {
            sql: format!(
                "SELECT disease FROM Patients, Health \
                 WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
                zip_of_zone(0)
            ),
            at: at.plus_seconds(1),
            context: AccessContext::new(who(2 * i + 1), "nurse", "treatment"),
            planted: true,
        });
    }
    out
}

/// Loads generated queries into a log, returning `(log, planted ids)`.
pub fn load_log(queries: &[GeneratedQuery]) -> (QueryLog, Vec<QueryId>) {
    let log = QueryLog::new();
    let mut planted = Vec::new();
    for g in queries {
        let id = log.record_text(&g.sql, g.at, g.context.clone()).expect("generated SQL parses");
        if g.planted {
            planted.push(id);
        }
    }
    (log, planted)
}

/// Convenience: snapshot a log as the batch slice the evaluator wants.
pub fn batch_of(log: &QueryLog) -> Vec<Arc<LoggedQuery>> {
    log.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let h = HospitalConfig::default();
        let c = QueryMixConfig { queries: 40, ..Default::default() };
        let a = generate_queries(&h, &c);
        let b = generate_queries(&h, &c);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.planted, y.planted);
        }
    }

    #[test]
    fn rate_zero_and_one() {
        let h = HospitalConfig::default();
        let none = generate_queries(
            &h,
            &QueryMixConfig { queries: 30, suspicious_rate: 0.0, ..Default::default() },
        );
        assert!(none.iter().all(|g| !g.planted));
        let all = generate_queries(
            &h,
            &QueryMixConfig { queries: 30, suspicious_rate: 1.0, ..Default::default() },
        );
        assert!(all.iter().all(|g| g.planted));
    }

    #[test]
    fn everything_parses_and_loads() {
        let h = HospitalConfig::default();
        let qs = generate_queries(
            &h,
            &QueryMixConfig { queries: 100, suspicious_rate: 0.3, ..Default::default() },
        );
        let (log, planted) = load_log(&qs);
        assert_eq!(log.len(), 100);
        assert_eq!(planted.len(), qs.iter().filter(|g| g.planted).count());
    }

    #[test]
    fn standard_audit_parses() {
        audex_sql::parse_audit(&standard_audit_text()).unwrap();
    }

    #[test]
    fn batch_attack_parses() {
        let qs = generate_batch_attack(&QueryMixConfig::default(), 5);
        assert_eq!(qs.len(), 10);
        let (log, planted) = load_log(&qs);
        assert_eq!(log.len(), 10);
        assert_eq!(planted.len(), 10);
        audex_sql::parse_audit(&batch_audit_text()).unwrap();
    }

    #[test]
    fn timestamps_are_increasing() {
        let h = HospitalConfig::default();
        let qs = generate_queries(&h, &QueryMixConfig { queries: 10, ..Default::default() });
        for w in qs.windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }
}
