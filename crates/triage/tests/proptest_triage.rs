//! Differential property test: the review queue and its mined templates
//! are a pure function of the ingested stream — byte-identical whatever
//! the execution strategy. Each random workload is driven through four
//! service configurations (1 vs 4 worker threads × indexed vs scan-all
//! dispatch) and the `triage`/`queue` wire responses must match exactly.
//!
//! This is the triage sibling of the engine's thread-count and
//! dispatch-mode differential tests: ranking floats are summed in one
//! fixed order and ties break on query id, so nothing about scheduling or
//! audit shortlisting may leak into what the auditor sees.

use audex_service::{Json, Request, ServiceConfig, ServiceCore};
use audex_sql::Timestamp;
use audex_storage::Database;
use proptest::prelude::*;

const ZONES: usize = 6;

/// One random query: which zip zone it probes, what shape it takes, and
/// which of three user/role identities issued it.
#[derive(Debug, Clone, Copy)]
struct Q {
    zone: usize,
    kind: usize,
    who: usize,
}

fn q() -> impl Strategy<Value = Q> {
    (0..ZONES, 0usize..4, 0usize..3).prop_map(|(zone, kind, who)| Q { zone, kind, who })
}

fn drive(audits: &[usize], queries: &[Q], parallelism: usize, scan_all: bool) -> (String, String) {
    let config = ServiceConfig { parallelism, scan_all_audits: scan_all, ..Default::default() };
    let mut core = ServiceCore::new(Database::new(), config);
    let mut sql = String::from("CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT);");
    for z in 0..ZONES {
        sql.push_str(&format!(" INSERT INTO Patients VALUES ('p{z}', 'z{z}', 'd{}');", z % 3));
    }
    let r = core.handle(Request::Dml { ts: Timestamp(100), sql }).response;
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    for &z in audits {
        let column = if z.is_multiple_of(2) { "disease" } else { "pid" };
        let r = core
            .handle(Request::Register {
                name: format!("audit-{z}"),
                expr: format!(
                    "DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 \
                     AUDIT {column} FROM Patients WHERE zipcode = 'z{z}'"
                ),
                now: Some(Timestamp(500)),
            })
            .response;
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    }
    for (i, q) in queries.iter().enumerate() {
        let sql = match q.kind {
            0 => format!("SELECT disease FROM Patients WHERE zipcode = 'z{}'", q.zone),
            1 => format!("SELECT pid FROM Patients WHERE zipcode = 'z{}'", q.zone),
            2 => "SELECT disease FROM Patients".to_string(),
            _ => format!("SELECT zipcode FROM Patients WHERE zipcode = 'z{}'", q.zone),
        };
        let r = core
            .handle(Request::Log {
                ts: Timestamp(1_000 + i as i64),
                user: format!("u{}", q.who),
                role: format!("r{}", q.who),
                purpose: "care".into(),
                sql,
            })
            .response;
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    }
    // A weight so the sensitivity multiplier is exercised too.
    core.handle(Request::Weight {
        table: "Patients".into(),
        column: Some("pid".into()),
        weight: 3.0,
    });
    let triage = core.handle(Request::Triage).response.to_string();
    let queue = core.handle(Request::Queue { top: Some(10_000), offset: 0 }).response.to_string();
    (triage, queue)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn queue_and_templates_are_execution_invariant(
        audit_zones in proptest::collection::btree_set(0..ZONES, 1..ZONES),
        queries in proptest::collection::vec(q(), 1..40),
    ) {
        let audits: Vec<usize> = audit_zones.into_iter().collect();
        let reference = drive(&audits, &queries, 1, false);
        for (parallelism, scan_all) in [(1, true), (4, false), (4, true)] {
            let got = drive(&audits, &queries, parallelism, scan_all);
            prop_assert_eq!(
                &reference,
                &got,
                "triage/queue drifted at parallelism={} scan_all={}",
                parallelism,
                scan_all
            );
        }
    }
}
