//! `audex-triage` — the review workflow over raw verdicts.
//!
//! At production volume the bottleneck stops being "compute verdicts" and
//! becomes "which of the 10k flagged queries does a human look at first,
//! and why". This crate turns the per-query [`audex_core::QueryScore`]
//! stream into an auditable workflow:
//!
//! * [`TriageItem`] — one flagged query with its aggregate suspicion, the
//!   audits it tripped, and the evidence columns behind the numbers;
//! * [`ReviewQueue`] — the ranked queue: priority = suspicion ×
//!   column-sensitivity, under a fixed auditor budget (Yan et al., *Game
//!   Theoretic Prioritization of Database Auditing*);
//! * [`Template`] — recurring explanation templates mined from the open
//!   items, so benign bulk patterns collapse to one line (Fabbri–LeFevre,
//!   *Explanation-Based Auditing*);
//! * [`RedactedScore`] — the no-raw-SQL projection of a score, carrying
//!   exactly what the queue needs so a redacted journal replays to a
//!   byte-identical queue;
//! * [`fnv1a64`] — the hash stored in place of raw SQL text under
//!   `--redact-log`.
//!
//! Everything here is deterministic: items live in ordered maps, ranking
//! breaks ties by query id, and template mining folds in query-id order, so
//! the queue and templates are byte-identical across thread counts and
//! dispatch modes (proven by `tests/proptest_triage.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Robustness policy: library code must surface failures as structured
// errors, never panic on them (tests are exempt via clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};

use audex_core::{AuditId, BaseColumn, QueryScore};
use audex_log::QueryId;
use audex_sql::{Ident, Timestamp};

/// FNV-1a 64-bit, the hash stored for a query's SQL text under
/// `--redact-log`. Std-only, stable across platforms and runs — two redacted
/// stores of the same workload hash identically.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Review lifecycle of a flagged query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReviewState {
    /// Awaiting review — ranked in the queue.
    #[default]
    Open,
    /// Reviewed and acknowledged as a real concern.
    Acked,
    /// Reviewed and dismissed as benign.
    Dismissed,
}

impl ReviewState {
    /// The wire/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            ReviewState::Open => "open",
            ReviewState::Acked => "acked",
            ReviewState::Dismissed => "dismissed",
        }
    }
}

/// The no-raw-SQL projection of one [`QueryScore`]: everything the review
/// queue (and a post-recovery `audit` summary) needs, nothing that reveals
/// the query text. This is what a `--redact-log` journal stores per score,
/// so a redacted store replays to a byte-identical [`ReviewQueue`].
#[derive(Debug, Clone, PartialEq)]
pub struct RedactedScore {
    /// The audit the score is against.
    pub audit: AuditId,
    /// Fraction of the target view's facts touched/exposed.
    pub fact_coverage: f64,
    /// Fraction of the audit's relevant columns accessed.
    pub column_coverage: f64,
    /// `fact_coverage · column_coverage`.
    pub closeness: f64,
    /// Facts touched (indispensable mode).
    pub touched: u64,
    /// Facts exposed (value mode).
    pub exposed: u64,
    /// Audit-relevant columns the query accessed, in base identity.
    pub covered: Vec<BaseColumn>,
}

impl RedactedScore {
    /// Projects a live score down to its redacted form.
    pub fn from_score(s: &QueryScore) -> RedactedScore {
        RedactedScore {
            audit: s.audit,
            fact_coverage: s.fact_coverage,
            column_coverage: s.column_coverage,
            closeness: s.closeness,
            touched: s.evidence.touched,
            exposed: s.evidence.exposed,
            covered: s.evidence.covered_columns.clone(),
        }
    }
}

/// One flagged query in the review queue, with the aggregate evidence an
/// auditor reads first.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageItem {
    /// The flagged query.
    pub query: QueryId,
    /// Its execution instant.
    pub ts: Timestamp,
    /// Submitting user.
    pub user: Ident,
    /// Role acted under.
    pub role: Ident,
    /// Declared purpose.
    pub purpose: Ident,
    /// Total closeness across every audit the query scored against.
    pub suspicion: f64,
    /// The audits it tripped.
    pub audits: BTreeSet<AuditId>,
    /// Union of audit-relevant columns it accessed, in base identity.
    pub covered: BTreeSet<BaseColumn>,
    /// Total facts touched across audits (indispensable mode).
    pub touched: u64,
    /// Total facts exposed across audits (value mode).
    pub exposed: u64,
    /// Where it is in the review lifecycle.
    pub state: ReviewState,
}

/// Per-table / per-column sensitivity weights. Resolution is most-specific
/// wins: an exact `(table, column)` weight, else the table's weight, else
/// the default `1.0` — so `weight Patients.disease 5` outranks a blanket
/// `weight Patients 2`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensitivityMap {
    by_column: BTreeMap<(Ident, Ident), f64>,
    by_table: BTreeMap<Ident, f64>,
}

impl SensitivityMap {
    /// Sets a weight for a whole table or one of its columns.
    pub fn set(&mut self, table: Ident, column: Option<Ident>, weight: f64) {
        match column {
            Some(c) => {
                self.by_column.insert((table, c), weight);
            }
            None => {
                self.by_table.insert(table, weight);
            }
        }
    }

    /// The weight of one base column.
    pub fn weight_of(&self, bc: &BaseColumn) -> f64 {
        if let Some(w) = self.by_column.get(&(bc.0.clone(), bc.1.clone())) {
            return *w;
        }
        self.by_table.get(&bc.0).copied().unwrap_or(1.0)
    }

    /// The sensitivity of a covered-column set: the maximum weight of any
    /// covered column (an auditor cares about the most sensitive thing the
    /// query reached), `1.0` when nothing audited was covered.
    pub fn sensitivity(&self, covered: &BTreeSet<BaseColumn>) -> f64 {
        covered.iter().map(|bc| self.weight_of(bc)).fold(1.0_f64, f64::max)
    }

    /// Number of configured weights (tables + columns).
    pub fn len(&self) -> usize {
        self.by_column.len() + self.by_table.len()
    }

    /// True when no weight is configured.
    pub fn is_empty(&self) -> bool {
        self.by_column.is_empty() && self.by_table.is_empty()
    }
}

/// A recurring explanation template: open items sharing the same
/// (role, purpose, covered columns, audits) shape, collapsed to one line.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Role the grouped queries acted under.
    pub role: Ident,
    /// Their declared purpose.
    pub purpose: Ident,
    /// The audit-relevant columns they accessed.
    pub covered: BTreeSet<BaseColumn>,
    /// The audits they tripped.
    pub audits: BTreeSet<AuditId>,
    /// Open items matching the template.
    pub count: u64,
    /// Their total suspicion.
    pub suspicion: f64,
    /// The lowest-id example query.
    pub example: QueryId,
}

/// The ranked review queue over flagged queries.
///
/// Items are held per query; `observe` folds one flagged query's scores in
/// (idempotent per query id — re-observation replaces). Ranking is
/// priority = suspicion × sensitivity, descending, ties broken by ascending
/// query id, so the order is total and deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReviewQueue {
    items: BTreeMap<QueryId, TriageItem>,
    weights: SensitivityMap,
    /// How many items the auditor reviews per pass: the default page size
    /// of [`ReviewQueue::page`].
    budget: Option<u64>,
}

/// Counts of items per review state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounts {
    /// Items awaiting review.
    pub open: u64,
    /// Items acknowledged.
    pub acked: u64,
    /// Items dismissed.
    pub dismissed: u64,
}

impl ReviewQueue {
    /// An empty queue with an optional auditor budget.
    pub fn new(budget: Option<u64>) -> ReviewQueue {
        ReviewQueue { budget, ..ReviewQueue::default() }
    }

    /// The auditor budget (default page size), if configured.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The sensitivity weights.
    pub fn weights(&self) -> &SensitivityMap {
        &self.weights
    }

    /// Sets one sensitivity weight.
    pub fn set_weight(&mut self, table: Ident, column: Option<Ident>, weight: f64) {
        self.weights.set(table, column, weight);
    }

    /// Folds one flagged query in from live scores. Queries with no scores
    /// never enter the queue — call only when `scores` is non-empty.
    pub fn observe(
        &mut self,
        query: QueryId,
        ts: Timestamp,
        user: Ident,
        role: Ident,
        purpose: Ident,
        scores: &[QueryScore],
    ) {
        let rows: Vec<RedactedScore> = scores.iter().map(RedactedScore::from_score).collect();
        self.observe_redacted(query, ts, user, role, purpose, &rows);
    }

    /// [`ReviewQueue::observe`] from redacted score rows — the replay path
    /// for `--redact-log` stores. `observe` funnels through this, so a
    /// redacted journal replays to a byte-identical queue by construction.
    pub fn observe_redacted(
        &mut self,
        query: QueryId,
        ts: Timestamp,
        user: Ident,
        role: Ident,
        purpose: Ident,
        rows: &[RedactedScore],
    ) {
        if rows.is_empty() {
            return;
        }
        let mut item = TriageItem {
            query,
            ts,
            user,
            role,
            purpose,
            suspicion: 0.0,
            audits: BTreeSet::new(),
            covered: BTreeSet::new(),
            touched: 0,
            exposed: 0,
            state: ReviewState::Open,
        };
        for r in rows {
            item.suspicion += r.closeness;
            item.audits.insert(r.audit);
            item.covered.extend(r.covered.iter().cloned());
            item.touched += r.touched;
            item.exposed += r.exposed;
        }
        self.items.insert(query, item);
    }

    /// Marks one item reviewed. `false` when the query is not in the queue
    /// (never flagged) — callers reject, and replay tolerates, unknown ids.
    pub fn set_state(&mut self, query: QueryId, state: ReviewState) -> bool {
        match self.items.get_mut(&query) {
            Some(item) => {
                item.state = state;
                true
            }
            None => false,
        }
    }

    /// The item for one query.
    pub fn item(&self, query: QueryId) -> Option<&TriageItem> {
        self.items.get(&query)
    }

    /// Items per review state.
    pub fn counts(&self) -> QueueCounts {
        let mut c = QueueCounts::default();
        for item in self.items.values() {
            match item.state {
                ReviewState::Open => c.open += 1,
                ReviewState::Acked => c.acked += 1,
                ReviewState::Dismissed => c.dismissed += 1,
            }
        }
        c
    }

    /// Total items held, any state.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was ever flagged.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// One item's priority under the current weights.
    pub fn priority(&self, item: &TriageItem) -> f64 {
        item.suspicion * self.weights.sensitivity(&item.covered)
    }

    /// Every **open** item ranked by priority (descending), ties broken by
    /// ascending query id — a total, deterministic order.
    pub fn ranked(&self) -> Vec<(&TriageItem, f64)> {
        let mut out: Vec<(&TriageItem, f64)> = self
            .items
            .values()
            .filter(|i| i.state == ReviewState::Open)
            .map(|i| (i, self.priority(i)))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.query.cmp(&b.0.query)));
        out
    }

    /// One page of the ranked queue. `top` defaults to the auditor budget
    /// (or 10 with no budget configured); `offset` skips already-reviewed
    /// pages.
    pub fn page(&self, top: Option<u64>, offset: u64) -> Vec<(&TriageItem, f64)> {
        let top = top.or(self.budget).unwrap_or(10) as usize;
        self.ranked().into_iter().skip(offset as usize).take(top).collect()
    }

    /// Mines the open items into recurring explanation templates: items
    /// sharing (role, purpose, covered columns, audits) collapse to one
    /// line. Sorted by count descending, ties by example query id — so the
    /// biggest benign bulk pattern surfaces first.
    pub fn templates(&self) -> Vec<Template> {
        type Key = (Ident, Ident, BTreeSet<BaseColumn>, BTreeSet<AuditId>);
        let mut groups: BTreeMap<Key, (u64, f64, QueryId)> = BTreeMap::new();
        // Fold in ascending query-id order: counts and example are
        // order-independent, and the f64 suspicion sum gets one fixed
        // association order.
        for item in self.items.values() {
            if item.state != ReviewState::Open {
                continue;
            }
            let key = (
                item.role.clone(),
                item.purpose.clone(),
                item.covered.clone(),
                item.audits.clone(),
            );
            let e = groups.entry(key).or_insert((0, 0.0, item.query));
            e.0 += 1;
            e.1 += item.suspicion;
            e.2 = e.2.min(item.query);
        }
        let mut out: Vec<Template> = groups
            .into_iter()
            .map(|((role, purpose, covered, audits), (count, suspicion, example))| Template {
                role,
                purpose,
                covered,
                audits,
                count,
                suspicion,
                example,
            })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.example.cmp(&b.example)));
        out
    }

    /// The open queries matching template `index` of the current
    /// [`ReviewQueue::templates`] ordering, in ascending query-id order —
    /// the resolution step of a template-wide bulk acknowledgement. Empty
    /// when the index is out of range (templates are mined live, so an
    /// index from a stale `triage` listing can dangle).
    pub fn template_queries(&self, index: usize) -> Vec<QueryId> {
        let Some(t) = self.templates().into_iter().nth(index) else {
            return Vec::new();
        };
        self.items
            .values()
            .filter(|i| {
                i.state == ReviewState::Open
                    && i.role == t.role
                    && i.purpose == t.purpose
                    && i.covered == t.covered
                    && i.audits == t.audits
            })
            .map(|i| i.query)
            .collect()
    }

    /// Flagged queries per surviving template over the open items — the
    /// Fabbri–LeFevre compression claim as a number (`0.0` when no item is
    /// open).
    pub fn compression(&self) -> f64 {
        let open = self.counts().open;
        let t = self.templates().len();
        if t == 0 {
            0.0
        } else {
            open as f64 / t as f64
        }
    }

    /// Every item in ascending query-id order, for checkpointing.
    pub fn export(&self) -> Vec<TriageItem> {
        self.items.values().cloned().collect()
    }

    /// Replaces the held items with checkpointed ones — the inverse of
    /// [`ReviewQueue::export`]. Weights and budget are untouched (weights
    /// replay from their own journal records; the budget is configuration).
    pub fn restore(&mut self, items: Vec<TriageItem>) {
        self.items = items.into_iter().map(|i| (i.query, i)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item_rows(closeness: f64, audit: u64, col: (&str, &str)) -> Vec<RedactedScore> {
        vec![RedactedScore {
            audit: AuditId(audit),
            fact_coverage: closeness,
            column_coverage: 1.0,
            closeness,
            touched: 2,
            exposed: 0,
            covered: vec![(Ident::new(col.0), Ident::new(col.1))],
        }]
    }

    fn observe(q: &mut ReviewQueue, id: u64, role: &str, rows: &[RedactedScore]) {
        q.observe_redacted(
            QueryId(id),
            Timestamp(id as i64),
            Ident::new("u"),
            Ident::new(role),
            Ident::new("treatment"),
            rows,
        );
    }

    #[test]
    fn fnv1a64_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"SELECT 1"), fnv1a64(b"SELECT 2"));
    }

    #[test]
    fn ranking_is_priority_then_query_id() {
        let mut q = ReviewQueue::new(None);
        observe(&mut q, 1, "nurse", &item_rows(0.5, 0, ("Patients", "name")));
        observe(&mut q, 2, "nurse", &item_rows(0.9, 0, ("Patients", "name")));
        observe(&mut q, 3, "nurse", &item_rows(0.5, 0, ("Patients", "name")));
        let ranked = q.ranked();
        assert_eq!(
            ranked.iter().map(|(i, _)| i.query).collect::<Vec<_>>(),
            vec![QueryId(2), QueryId(1), QueryId(3)],
            "highest priority first, ties by ascending id"
        );
    }

    #[test]
    fn sensitivity_weights_reorder_the_queue() {
        let mut q = ReviewQueue::new(None);
        observe(&mut q, 1, "nurse", &item_rows(0.4, 0, ("Patients", "disease")));
        observe(&mut q, 2, "nurse", &item_rows(0.6, 0, ("Patients", "name")));
        assert_eq!(q.ranked()[0].0.query, QueryId(2));
        // disease is 5x as sensitive: 0.4*5 > 0.6*1.
        q.set_weight(Ident::new("Patients"), Some(Ident::new("disease")), 5.0);
        assert_eq!(q.ranked()[0].0.query, QueryId(1));
        assert!((q.ranked()[0].1 - 2.0).abs() < 1e-9);
        // Column weight is more specific than a table weight.
        q.set_weight(Ident::new("Patients"), None, 100.0);
        assert!(
            (q.weights().weight_of(&(Ident::new("Patients"), Ident::new("disease"))) - 5.0).abs()
                < 1e-9
        );
        assert!(
            (q.weights().weight_of(&(Ident::new("Patients"), Ident::new("name"))) - 100.0).abs()
                < 1e-9
        );
        assert_eq!(q.weights().len(), 2);
        assert!(!q.weights().is_empty());
    }

    #[test]
    fn ack_dismiss_move_items_out_of_the_ranking() {
        let mut q = ReviewQueue::new(None);
        observe(&mut q, 1, "nurse", &item_rows(0.5, 0, ("Patients", "name")));
        observe(&mut q, 2, "nurse", &item_rows(0.9, 0, ("Patients", "name")));
        assert!(q.set_state(QueryId(2), ReviewState::Acked));
        assert!(q.set_state(QueryId(1), ReviewState::Dismissed));
        assert!(!q.set_state(QueryId(99), ReviewState::Acked), "unknown ids are refused");
        assert!(q.ranked().is_empty());
        let c = q.counts();
        assert_eq!((c.open, c.acked, c.dismissed), (0, 1, 1));
        assert_eq!(q.item(QueryId(2)).map(|i| i.state), Some(ReviewState::Acked));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn paging_respects_budget_and_offset() {
        let mut q = ReviewQueue::new(Some(2));
        for id in 1..=5 {
            observe(&mut q, id, "nurse", &item_rows(id as f64 / 10.0, 0, ("Patients", "name")));
        }
        assert_eq!(q.budget(), Some(2));
        let page = q.page(None, 0);
        assert_eq!(page.len(), 2, "default page size is the budget");
        assert_eq!(page[0].0.query, QueryId(5));
        let next = q.page(None, 2);
        assert_eq!(next[0].0.query, QueryId(3));
        assert_eq!(q.page(Some(10), 0).len(), 5);
    }

    #[test]
    fn templates_collapse_recurring_shapes() {
        let mut q = ReviewQueue::new(None);
        for id in 1..=4 {
            observe(&mut q, id, "nurse", &item_rows(0.5, 0, ("Patients", "name")));
        }
        observe(&mut q, 9, "admin", &item_rows(0.5, 1, ("Patients", "disease")));
        let ts = q.templates();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].count, 4, "biggest bulk pattern first");
        assert_eq!(ts[0].example, QueryId(1));
        assert_eq!(ts[0].role, Ident::new("nurse"));
        assert!((ts[0].suspicion - 2.0).abs() < 1e-9);
        assert!((q.compression() - 2.5).abs() < 1e-9, "5 open items over 2 templates");
        // Reviewed items leave the template population.
        q.set_state(QueryId(9), ReviewState::Dismissed);
        assert_eq!(q.templates().len(), 1);
    }

    #[test]
    fn export_restore_round_trips() {
        let mut q = ReviewQueue::new(Some(3));
        observe(&mut q, 1, "nurse", &item_rows(0.5, 0, ("Patients", "name")));
        observe(&mut q, 2, "admin", &item_rows(0.7, 1, ("Patients", "disease")));
        q.set_state(QueryId(1), ReviewState::Acked);
        let exported = q.export();
        let mut fresh = ReviewQueue::new(Some(3));
        fresh.restore(exported);
        assert_eq!(q, fresh);
    }

    #[test]
    fn empty_scores_never_enter() {
        let mut q = ReviewQueue::new(None);
        observe(&mut q, 1, "nurse", &[]);
        assert!(q.is_empty());
        assert_eq!(q.compression(), 0.0);
    }
}
