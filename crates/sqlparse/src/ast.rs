//! Abstract syntax trees for SPJ queries, DML, and audit expressions.

use crate::time::Timestamp;
use std::hash::{Hash, Hasher};

/// An identifier (table, column, alias, user id, role, purpose…).
///
/// SQL identifiers compare and hash **ASCII case-insensitively** while
/// preserving the case they were written with, so `P-Personal` and
/// `p-personal` denote the same relation but print as written.
#[derive(Debug, Clone, Eq)]
pub struct Ident {
    /// The identifier text as written.
    pub value: String,
    /// True when the identifier was double-quoted in the source.
    pub quoted: bool,
}

impl Ident {
    /// An unquoted identifier.
    pub fn new(value: impl Into<String>) -> Self {
        Ident { value: value.into(), quoted: false }
    }

    /// A quoted identifier (exempt from keyword recognition).
    pub fn quoted(value: impl Into<String>) -> Self {
        Ident { value: value.into(), quoted: true }
    }

    /// Case-normalized (lowercased) form, the basis of equality and hashing.
    pub fn normalized(&self) -> String {
        self.value.to_ascii_lowercase()
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.value.eq_ignore_ascii_case(&other.value)
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Byte-wise case-folded comparison — identical ordering to
        // comparing `normalized()` strings (both are lexicographic over
        // ASCII-lowercased bytes) without allocating two `String`s per
        // comparison. `Ident` keys most of the engine's B-tree maps and
        // sets, so this runs on every tree descent of the hot path.
        let a = self.value.bytes().map(|b| b.to_ascii_lowercase());
        let b = other.value.bytes().map(|b| b.to_ascii_lowercase());
        a.cmp(b)
    }
}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for b in self.value.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

/// A possibly table-qualified column reference, e.g. `P-Personal.zipcode`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Optional table (or alias) qualifier.
    pub table: Option<Ident>,
    /// The column name.
    pub column: Ident,
}

impl ColumnRef {
    /// An unqualified column.
    pub fn bare(column: impl Into<Ident>) -> Self {
        ColumnRef { table: None, column: column.into() }
    }

    /// A table-qualified column.
    pub fn qualified(table: impl Into<Ident>, column: impl Into<Ident>) -> Self {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// SQL `NULL`.
    Null,
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Timestamp literal (from a quoted string that parses as a timestamp
    /// in contexts that expect one, or from the paper's `D/M/YYYY` form).
    Ts(Timestamp),
}

/// Binary operators, from the paper's SPJ predicate language plus arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
    }

    /// The comparison with operand order flipped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] LIKE pattern` with `%` and `_` wildcards.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern expression (usually a string literal).
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, …, en)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Conjunction of two expressions.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::And, right)
    }

    /// Collects every column referenced anywhere in the expression.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.walk_columns(&mut |c| out.push(c));
        out
    }

    /// Visits every column reference in the expression tree.
    pub fn walk_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColumnRef)) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } => expr.walk_columns(f),
            Expr::Binary { left, right, .. } => {
                left.walk_columns(f);
                right.walk_columns(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk_columns(f);
                pattern.walk_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_columns(f);
                for e in list {
                    e.walk_columns(f);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk_columns(f);
                low.walk_columns(f);
                high.walk_columns(f);
            }
            Expr::IsNull { expr, .. } => expr.walk_columns(f),
        }
    }
}

/// One item of a `SELECT` projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(Ident),
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<Ident>,
    },
}

/// A table in a `FROM` list, with optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// The relation name (possibly a backlog name like `b-P-Personal`).
    pub name: Ident,
    /// `AS alias`, if given.
    pub alias: Option<Ident>,
}

impl TableRef {
    /// A table reference without alias.
    pub fn named(name: impl Into<Ident>) -> Self {
        TableRef { name: name.into(), alias: None }
    }

    /// The name this table binds in the query's scope (alias if present).
    pub fn binding(&self) -> &Ident {
        self.alias.as_ref().unwrap_or(&self.name)
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The sort expression.
    pub expr: Expr,
    /// False for `DESC`.
    pub asc: bool,
}

/// An SPJ `SELECT` query — the paper's `Q = π_C(σ_P(T × R))`, extended with
/// the `ORDER BY` / `LIMIT` tail real query logs carry (ordering does not
/// change what a query *accesses*, but its key columns do count toward
/// `C_Q`, and `LIMIT` truncates what it *returns*).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// True for `SELECT DISTINCT`.
    pub distinct: bool,
    /// The projection list `C_OQ`.
    pub projection: Vec<SelectItem>,
    /// The `FROM` cross product `T × R`.
    pub from: Vec<TableRef>,
    /// The predicate `P_Q`.
    pub selection: Option<Expr>,
    /// `ORDER BY` keys (empty = unspecified order).
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: Ident,
    /// Declared type.
    pub ty: TypeName,
}

/// Column types supported by the storage substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Timestamp (seconds since epoch).
    Timestamp,
}

/// `CREATE TABLE name (col type, …)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: Ident,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
}

/// `INSERT INTO table [(cols)] VALUES (…), (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: Ident,
    /// Explicit column list; empty means "all columns in schema order".
    pub columns: Vec<Ident>,
    /// One expression row per inserted tuple.
    pub rows: Vec<Vec<Expr>>,
}

/// `UPDATE table SET col = e, … [WHERE p]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: Ident,
    /// `SET` assignments.
    pub assignments: Vec<(Ident, Expr)>,
    /// Optional predicate.
    pub selection: Option<Expr>,
}

/// `DELETE FROM table [WHERE p]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: Ident,
    /// Optional predicate.
    pub selection: Option<Expr>,
}

/// Any statement the engine executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT`.
    Select(Query),
    /// An `INSERT`.
    Insert(Insert),
    /// An `UPDATE`.
    Update(Update),
    /// A `DELETE`.
    Delete(Delete),
    /// A `CREATE TABLE`.
    CreateTable(CreateTable),
}

impl Statement {
    /// A short name for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Statement::Select(_) => "SELECT",
            Statement::Insert(_) => "INSERT",
            Statement::Update(_) => "UPDATE",
            Statement::Delete(_) => "DELETE",
            Statement::CreateTable(_) => "CREATE TABLE",
        }
    }
}

// ---------------------------------------------------------------------------
// Audit expressions (paper Fig. 7, subsuming Fig. 1)
// ---------------------------------------------------------------------------

/// One attribute inside an audit group: a column or `*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrItem {
    /// A (possibly qualified) column.
    Column(ColumnRef),
    /// `*` — every column of every `FROM` table (paper Fig. 4 `AUDIT [*]`).
    Star,
}

/// A bracketed group in the audit list: `(mandatory…)` or `[optional…]`.
///
/// Per the paper's §3.2: a batch must access **all** attributes of every
/// mandatory group and **at least one** attribute from each optional choice
/// to trip a granule of the corresponding scheme.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrGroup {
    /// `( … )` — all members required.
    Mandatory(Vec<AttrNode>),
    /// `[ … ]` — at least one member required.
    Optional(Vec<AttrNode>),
}

/// A node of the audit-attribute specification: a bare item (mandatory by
/// Table 6 rule 1) or a nested group (rule 6 permits nesting).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrNode {
    /// A bare attribute (implicitly mandatory).
    Item(AttrItem),
    /// A nested group.
    Group(AttrGroup),
}

/// The full audit-attribute specification: a sequence of nodes, implicitly
/// composed (Table 6 rule 2: a sequence of mandatory sets is one mandatory
/// set).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AttrSpec {
    /// The top-level sequence.
    pub nodes: Vec<AttrNode>,
}

impl AttrSpec {
    /// A specification with a single mandatory list of bare columns — the
    /// classic Fig. 1 `AUDIT a, b, c` form.
    pub fn mandatory_columns<I, C>(cols: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<Ident>,
    {
        AttrSpec {
            nodes: cols
                .into_iter()
                .map(|c| AttrNode::Item(AttrItem::Column(ColumnRef::bare(c))))
                .collect(),
        }
    }

    /// `AUDIT [*]` — every column optional (perfect-privacy encoding).
    pub fn optional_star() -> Self {
        AttrSpec {
            nodes: vec![AttrNode::Group(AttrGroup::Optional(vec![AttrNode::Item(AttrItem::Star)]))],
        }
    }
}

/// Threshold clause: the number of tuples per granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Threshold {
    /// `THRESHOLD N` — each granule holds `N` tuples of `U` (default 1).
    Count(u64),
    /// `THRESHOLD ALL` — one granule per scheme containing all of `U`.
    All,
}

impl Default for Threshold {
    fn default() -> Self {
        Threshold::Count(1)
    }
}

/// A point in the audit time language: `now()` or a literal timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TsSpec {
    /// The `now()` marker, resolved at audit-evaluation time.
    Now,
    /// A concrete instant.
    At(Timestamp),
}

impl TsSpec {
    /// Resolves against a chosen "current time".
    pub fn resolve(self, now: Timestamp) -> Timestamp {
        match self {
            TsSpec::Now => now,
            TsSpec::At(t) => t,
        }
    }
}

/// A closed interval `start TO end` (used by `DURING` and `DATA-INTERVAL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    /// Interval start (inclusive).
    pub start: TsSpec,
    /// Interval end (inclusive).
    pub end: TsSpec,
}

impl TimeInterval {
    /// Resolves both endpoints against a chosen "current time".
    pub fn resolve(self, now: Timestamp) -> (Timestamp, Timestamp) {
        (self.start.resolve(now), self.end.resolve(now))
    }
}

/// A `(role, purpose)` pattern where `-` (wildcard) matches anything —
/// `(r,pr) | (r,-) | (-,pr)` in the paper's grammar.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RolePurposePattern {
    /// Role to match; `None` is the `-` wildcard.
    pub role: Option<Ident>,
    /// Purpose to match; `None` is the `-` wildcard.
    pub purpose: Option<Ident>,
}

/// A parsed audit expression with every Fig. 7 clause. Optional clauses hold
/// their paper-specified defaults after parsing (`threshold` = 1,
/// `indispensable` = true, absent intervals = `None`, meaning "current day"
/// to be resolved by the audit engine).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditExpr {
    /// `Neg-Role-Purpose` patterns (exclude matching accesses; precedence
    /// over positive on conflict).
    pub neg_role_purpose: Vec<RolePurposePattern>,
    /// `Pos-Role-Purpose` patterns (restrict auditing to matching accesses).
    pub pos_role_purpose: Vec<RolePurposePattern>,
    /// `Neg-User-Identity` user ids.
    pub neg_users: Vec<Ident>,
    /// `Pos-User-Identity` user ids.
    pub pos_users: Vec<Ident>,
    /// Fig. 1 compatibility: `OTHERTHAN PURPOSE p1, p2` (equivalent to
    /// `Neg-Role-Purpose (-,p1) (-,p2)` and folded in by the audit engine).
    pub otherthan_purposes: Vec<Ident>,
    /// `DURING t1 TO t2` — which **query executions** to audit.
    pub during: Option<TimeInterval>,
    /// `DATA-INTERVAL t1 TO t2` — which **data versions** define the target
    /// view (paper §3.1).
    pub data_interval: Option<TimeInterval>,
    /// `THRESHOLD N | ALL` (default 1).
    pub threshold: Threshold,
    /// `INDISPENSABLE true | false` (default true).
    pub indispensable: bool,
    /// The `AUDIT` attribute specification.
    pub audit: AttrSpec,
    /// The `FROM` tables.
    pub from: Vec<TableRef>,
    /// The `WHERE` predicate `P_A`, if any.
    pub selection: Option<Expr>,
}

impl AuditExpr {
    /// A minimal audit expression with every optional clause defaulted.
    pub fn basic(audit: AttrSpec, from: Vec<TableRef>, selection: Option<Expr>) -> Self {
        AuditExpr {
            neg_role_purpose: Vec::new(),
            pos_role_purpose: Vec::new(),
            neg_users: Vec::new(),
            pos_users: Vec::new(),
            otherthan_purposes: Vec::new(),
            during: None,
            data_interval: None,
            threshold: Threshold::default(),
            indispensable: true,
            audit,
            from,
            selection,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(i: &Ident) -> u64 {
        let mut h = DefaultHasher::new();
        i.hash(&mut h);
        h.finish()
    }

    #[test]
    fn idents_compare_case_insensitively() {
        assert_eq!(Ident::new("P-Personal"), Ident::new("p-personal"));
        assert_ne!(Ident::new("P-Personal"), Ident::new("P-Health"));
        assert_eq!(hash_of(&Ident::new("ZipCode")), hash_of(&Ident::new("zipcode")));
    }

    #[test]
    fn ident_ordering_is_normalized() {
        assert!(Ident::new("Apple") < Ident::new("banana"));
    }

    #[test]
    fn table_binding_prefers_alias() {
        let t = TableRef { name: Ident::new("Patients"), alias: Some(Ident::new("p")) };
        assert_eq!(t.binding(), &Ident::new("p"));
        assert_eq!(TableRef::named("Patients").binding(), &Ident::new("patients"));
    }

    #[test]
    fn expr_columns_walks_all_positions() {
        let e = Expr::and(
            Expr::binary(
                Expr::Column(ColumnRef::bare("a")),
                BinOp::Eq,
                Expr::Column(ColumnRef::qualified("t", "b")),
            ),
            Expr::Between {
                expr: Box::new(Expr::Column(ColumnRef::bare("c"))),
                low: Box::new(Expr::Literal(Literal::Int(1))),
                high: Box::new(Expr::Column(ColumnRef::bare("d"))),
                negated: false,
            },
        );
        let cols: Vec<String> = e.columns().iter().map(|c| c.column.normalized()).collect();
        assert_eq!(cols, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn comparison_flip() {
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
        assert_eq!(BinOp::GtEq.flip(), BinOp::LtEq);
        assert_eq!(BinOp::Eq.flip(), BinOp::Eq);
    }

    #[test]
    fn defaults_match_paper() {
        let a = AuditExpr::basic(
            AttrSpec::mandatory_columns(["disease"]),
            vec![TableRef::named("Patients")],
            None,
        );
        assert_eq!(a.threshold, Threshold::Count(1));
        assert!(a.indispensable);
        assert!(a.during.is_none());
        assert!(a.data_interval.is_none());
    }

    #[test]
    fn ts_spec_resolution() {
        let now = Timestamp(1000);
        assert_eq!(TsSpec::Now.resolve(now), now);
        assert_eq!(TsSpec::At(Timestamp(5)).resolve(now), Timestamp(5));
    }
}
