//! Recursive-descent / Pratt parser for statements and audit expressions.

mod audit;
mod dml;
mod expr;
mod select;

use crate::ast::{Ident, Statement};
use crate::error::{ParseError, Span};
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};

/// Words that may not be used as bare identifiers (quote them if needed).
/// The paper's clause names are included so clause boundaries are
/// unambiguous.
pub const RESERVED: &[&str] = &[
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "or",
    "not",
    "like",
    "in",
    "between",
    "is",
    "null",
    "true",
    "false",
    "as",
    "insert",
    "into",
    "values",
    "update",
    "set",
    "delete",
    "create",
    "table",
    "order",
    "by",
    "asc",
    "desc",
    "limit",
    "audit",
    "during",
    "to",
    "threshold",
    "indispensable",
    "otherthan",
    "purpose",
    "all",
    "data-interval",
    "neg-role-purpose",
    "pos-role-purpose",
    "neg-user-identity",
    "pos-user-identity",
];

/// Clause-introducing keywords of the audit grammar (Fig. 7).
pub(crate) const AUDIT_CLAUSES: &[&str] = &[
    "neg-role-purpose",
    "pos-role-purpose",
    "neg-user-identity",
    "pos-user-identity",
    "otherthan",
    "during",
    "data-interval",
    "threshold",
    "indispensable",
    "audit",
];

/// A token-stream parser. Construct with [`Parser::new`], then call one of
/// the `parse_*` entry points.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lexes `src` and prepares to parse it.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser { tokens: Lexer::new(src).tokenize()?, pos: 0 })
    }

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    pub(crate) fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    pub(crate) fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    pub(crate) fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek_span())
    }

    /// Consumes the next token if it matches `kind` exactly.
    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is the given keyword.
    pub(crate) fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Requires the given keyword next.
    pub(crate) fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {}, found {}", kw.to_ascii_uppercase(), self.peek())))
        }
    }

    /// Requires the given punctuation next.
    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {}, found {}", kind, self.peek())))
        }
    }

    /// True when the next token is any of the audit clause keywords, or EOF.
    pub(crate) fn at_audit_clause_boundary(&self) -> bool {
        match self.peek() {
            TokenKind::Eof => true,
            TokenKind::Word(w) => {
                let lower = w.to_ascii_lowercase();
                AUDIT_CLAUSES.contains(&lower.as_str())
            }
            _ => false,
        }
    }

    /// Parses an identifier; bare reserved words are rejected.
    pub(crate) fn parse_ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            TokenKind::Word(w) => {
                if RESERVED.contains(&w.to_ascii_lowercase().as_str()) {
                    return Err(self.error(format!(
                        "{w:?} is a reserved word; use double quotes to treat it as an identifier"
                    )));
                }
                self.advance();
                Ok(Ident::new(w))
            }
            TokenKind::QuotedIdent(w) => {
                self.advance();
                Ok(Ident::quoted(w))
            }
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    /// Like [`Parser::parse_ident`] but also accepts string literals, used
    /// where the paper quotes values loosely (role / purpose / user lists).
    ///
    /// Additionally re-joins numeric-suffixed names such as `u-17`, which the
    /// lexer splits into `u`, `-`, `17` (a hyphen before a digit is always an
    /// operator elsewhere). The join only happens when the tokens are
    /// directly adjacent in the source.
    pub(crate) fn parse_name_like(&mut self) -> Result<Ident, ParseError> {
        if let TokenKind::StringLit(s) = self.peek().clone() {
            self.advance();
            return Ok(Ident::quoted(s));
        }
        let mut ident = self.parse_ident()?;
        let mut end = self.tokens[self.pos - 1].span.end;
        loop {
            let minus = &self.tokens[self.pos.min(self.tokens.len() - 1)];
            let digits = &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)];
            match (&minus.kind, &digits.kind) {
                (TokenKind::Minus, TokenKind::Int(n))
                    if minus.span.start == end && digits.span.start == minus.span.end =>
                {
                    ident.value.push('-');
                    ident.value.push_str(&n.to_string());
                    end = digits.span.end;
                    self.advance();
                    self.advance();
                }
                _ => break,
            }
        }
        Ok(ident)
    }

    /// Requires the input to be fully consumed (trailing `;` allowed).
    pub(crate) fn expect_eof(&mut self) -> Result<(), ParseError> {
        while self.eat(&TokenKind::Semicolon) {}
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    /// Parses one statement and requires EOF after it.
    pub fn parse_statement_eof(&mut self) -> Result<Statement, ParseError> {
        let stmt = self.parse_statement()?;
        self.expect_eof()?;
        Ok(stmt)
    }

    /// Parses a semicolon-separated script.
    pub fn parse_script(&mut self) -> Result<Vec<Statement>, ParseError> {
        let mut out = Vec::new();
        loop {
            while self.eat(&TokenKind::Semicolon) {}
            if self.peek() == &TokenKind::Eof {
                return Ok(out);
            }
            out.push(self.parse_statement()?);
            if self.peek() != &TokenKind::Eof && !self.eat(&TokenKind::Semicolon) {
                return Err(
                    self.error(format!("expected ';' between statements, found {}", self.peek()))
                );
            }
            // put back nothing: eat consumed the semicolon if present
        }
    }

    /// Parses one statement by dispatching on its leading keyword.
    pub fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            k if k.is_keyword("select") => Ok(Statement::Select(self.parse_select()?)),
            k if k.is_keyword("insert") => Ok(Statement::Insert(self.parse_insert()?)),
            k if k.is_keyword("update") => Ok(Statement::Update(self.parse_update()?)),
            k if k.is_keyword("delete") => Ok(Statement::Delete(self.parse_delete()?)),
            k if k.is_keyword("create") => Ok(Statement::CreateTable(self.parse_create_table()?)),
            other => Err(self.error(format!(
                "expected SELECT, INSERT, UPDATE, DELETE, or CREATE TABLE, found {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_words_rejected_as_identifiers() {
        let mut p = Parser::new("select").unwrap();
        assert!(p.parse_ident().is_err());
    }

    #[test]
    fn quoted_reserved_word_is_fine() {
        let mut p = Parser::new("\"select\"").unwrap();
        assert_eq!(p.parse_ident().unwrap(), Ident::new("select"));
    }

    #[test]
    fn script_requires_semicolons() {
        let err = Parser::new("create table t (a int) create table u (b int)")
            .unwrap()
            .parse_script()
            .unwrap_err();
        assert!(err.message.contains("';'"), "{err}");
    }

    #[test]
    fn script_tolerates_stray_semicolons() {
        let stmts = Parser::new(";;create table t (a int);; ;").unwrap().parse_script().unwrap();
        assert_eq!(stmts.len(), 1);
    }
}
