//! Pratt expression parsing.

use super::{Parser, RESERVED};
use crate::ast::{BinOp, ColumnRef, Expr, Literal, UnaryOp};
use crate::error::ParseError;
use crate::token::TokenKind;

/// Binding powers, loosest to tightest.
const P_OR: u8 = 1;
const P_AND: u8 = 2;
const P_NOT: u8 = 3;
const P_CMP: u8 = 4;
const P_ADD: u8 = 5;
const P_MUL: u8 = 6;

impl Parser {
    /// Parses a full boolean/scalar expression.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_expr_bp(0)
    }

    fn parse_expr_bp(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_prefix()?;
        while let Some((bp, op)) = self.peek_infix() {
            if bp <= min_bp {
                break;
            }
            lhs = self.parse_infix(lhs, bp, op)?;
        }
        Ok(lhs)
    }

    /// Identifies the next infix operator, if any, with its binding power.
    fn peek_infix(&self) -> Option<(u8, InfixOp)> {
        Some(match self.peek() {
            k if k.is_keyword("or") => (P_OR, InfixOp::Bin(BinOp::Or)),
            k if k.is_keyword("and") => (P_AND, InfixOp::Bin(BinOp::And)),
            k if k.is_keyword("like") => (P_CMP, InfixOp::Like { negated: false }),
            k if k.is_keyword("in") => (P_CMP, InfixOp::In { negated: false }),
            k if k.is_keyword("between") => (P_CMP, InfixOp::Between { negated: false }),
            k if k.is_keyword("is") => (P_CMP, InfixOp::Is),
            k if k.is_keyword("not") => (P_CMP, InfixOp::NotPrefixedSuffix),
            TokenKind::Eq => (P_CMP, InfixOp::Bin(BinOp::Eq)),
            TokenKind::NotEq => (P_CMP, InfixOp::Bin(BinOp::NotEq)),
            TokenKind::Lt => (P_CMP, InfixOp::Bin(BinOp::Lt)),
            TokenKind::LtEq => (P_CMP, InfixOp::Bin(BinOp::LtEq)),
            TokenKind::Gt => (P_CMP, InfixOp::Bin(BinOp::Gt)),
            TokenKind::GtEq => (P_CMP, InfixOp::Bin(BinOp::GtEq)),
            TokenKind::Plus => (P_ADD, InfixOp::Bin(BinOp::Add)),
            TokenKind::Minus => (P_ADD, InfixOp::Bin(BinOp::Sub)),
            TokenKind::Star => (P_MUL, InfixOp::Bin(BinOp::Mul)),
            TokenKind::Slash => (P_MUL, InfixOp::Bin(BinOp::Div)),
            TokenKind::Percent => (P_MUL, InfixOp::Bin(BinOp::Mod)),
            _ => return None,
        })
    }

    fn parse_infix(&mut self, lhs: Expr, bp: u8, op: InfixOp) -> Result<Expr, ParseError> {
        self.advance(); // the operator token (or NOT)
        match op {
            InfixOp::Bin(op) => {
                let rhs = self.parse_expr_bp(bp)?;
                Ok(Expr::binary(lhs, op, rhs))
            }
            InfixOp::Like { negated } => {
                let pattern = self.parse_expr_bp(P_CMP)?;
                Ok(Expr::Like { expr: Box::new(lhs), pattern: Box::new(pattern), negated })
            }
            InfixOp::In { negated } => {
                self.expect(&TokenKind::LParen)?;
                let mut list = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    list.push(self.parse_expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::InList { expr: Box::new(lhs), list, negated })
            }
            InfixOp::Between { negated } => {
                // Bounds bind tighter than AND so the separator AND survives.
                let low = self.parse_expr_bp(P_CMP)?;
                self.expect_keyword("and")?;
                let high = self.parse_expr_bp(P_CMP)?;
                Ok(Expr::Between {
                    expr: Box::new(lhs),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                })
            }
            InfixOp::Is => {
                let negated = self.eat_keyword("not");
                self.expect_keyword("null")?;
                Ok(Expr::IsNull { expr: Box::new(lhs), negated })
            }
            InfixOp::NotPrefixedSuffix => {
                // `x NOT LIKE p`, `x NOT IN (…)`, `x NOT BETWEEN a AND b`.
                if self.eat_keyword("like") {
                    let pattern = self.parse_expr_bp(P_CMP)?;
                    Ok(Expr::Like {
                        expr: Box::new(lhs),
                        pattern: Box::new(pattern),
                        negated: true,
                    })
                } else if self.eat_keyword("in") {
                    self.expect(&TokenKind::LParen)?;
                    let mut list = vec![self.parse_expr()?];
                    while self.eat(&TokenKind::Comma) {
                        list.push(self.parse_expr()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::InList { expr: Box::new(lhs), list, negated: true })
                } else if self.eat_keyword("between") {
                    let low = self.parse_expr_bp(P_CMP)?;
                    self.expect_keyword("and")?;
                    let high = self.parse_expr_bp(P_CMP)?;
                    Ok(Expr::Between {
                        expr: Box::new(lhs),
                        low: Box::new(low),
                        high: Box::new(high),
                        negated: true,
                    })
                } else {
                    Err(self.error("expected LIKE, IN, or BETWEEN after NOT"))
                }
            }
        }
    }

    fn parse_prefix(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            k if k.is_keyword("not") => {
                self.advance();
                let operand = self.parse_expr_bp(P_NOT)?;
                Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(operand) })
            }
            TokenKind::Minus => {
                self.advance();
                let operand = self.parse_expr_bp(P_MUL)?;
                Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(operand) })
            }
            TokenKind::Plus => {
                self.advance();
                self.parse_expr_bp(P_MUL)
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            k if k.is_keyword("null") => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            k if k.is_keyword("true") => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            k if k.is_keyword("false") => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Word(w) => {
                if RESERVED.contains(&w.to_ascii_lowercase().as_str()) {
                    return Err(self.error(format!("unexpected keyword {w} in expression")));
                }
                self.parse_column_ref().map(Expr::Column)
            }
            TokenKind::QuotedIdent(_) => self.parse_column_ref().map(Expr::Column),
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    /// Parses `column` or `table.column`.
    pub(crate) fn parse_column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.parse_ident()?;
        if self.peek() == &TokenKind::Dot && !matches!(self.peek_at(1), TokenKind::Star) {
            self.advance();
            let column = self.parse_ident()?;
            Ok(ColumnRef { table: Some(first), column })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }
}

#[derive(Clone)]
enum InfixOp {
    Bin(BinOp),
    Like { negated: bool },
    In { negated: bool },
    Between { negated: bool },
    Is,
    NotPrefixedSuffix,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        let mut p = Parser::new(src).unwrap();
        let e = p.parse_expr().unwrap();
        p.expect_eof().unwrap();
        e
    }

    #[test]
    fn precedence_or_and() {
        // a = 1 OR b = 2 AND c = 3  ==  a=1 OR (b=2 AND c=3)
        let e = expr("a = 1 OR b = 2 AND c = 3");
        match e {
            Expr::Binary { op: BinOp::Or, right, .. } => match *right {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("expected AND on the right, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // a + b * c parses as a + (b * c)
        let e = expr("a + b * c");
        match e {
            Expr::Binary { op: BinOp::Add, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparison_of_sums() {
        let e = expr("salary + bonus > 10000");
        assert!(matches!(e, Expr::Binary { op: BinOp::Gt, .. }));
    }

    #[test]
    fn between_keeps_separator_and() {
        let e = expr("age BETWEEN 20 AND 30 AND zipcode = 145568");
        match e {
            Expr::Binary { op: BinOp::And, left, .. } => {
                assert!(matches!(*left, Expr::Between { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_like_in_between() {
        assert!(matches!(expr("name NOT LIKE 'J%'"), Expr::Like { negated: true, .. }));
        assert!(matches!(expr("d NOT IN ('flu','cold')"), Expr::InList { negated: true, .. }));
        assert!(matches!(expr("x NOT BETWEEN 1 AND 2"), Expr::Between { negated: true, .. }));
    }

    #[test]
    fn is_null_forms() {
        assert!(matches!(expr("x IS NULL"), Expr::IsNull { negated: false, .. }));
        assert!(matches!(expr("x IS NOT NULL"), Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn not_prefix_binds_looser_than_comparison() {
        // NOT a = 1  ==  NOT (a = 1)
        let e = expr("NOT a = 1");
        match e {
            Expr::Unary { op: UnaryOp::Not, expr } => {
                assert!(matches!(*expr, Expr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let e = expr("-5 + 3");
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn qualified_columns() {
        let e = expr("P-Personal.pid = P-Health.pid");
        match e {
            Expr::Binary { left, right, .. } => {
                assert!(matches!(*left, Expr::Column(ColumnRef { table: Some(_), .. })));
                assert!(matches!(*right, Expr::Column(ColumnRef { table: Some(_), .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesized_groups() {
        let e = expr("(a = 1 OR b = 2) AND c = 3");
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn paper_audit_predicate() {
        // The Fig. 3 predicate parses as a 5-way conjunction.
        let e = expr(
            "P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
             P-Personal.zipcode=145568 and P-Employ.salary > 10000 and \
             P-Health.disease='diabetic'",
        );
        fn count_ands(e: &Expr) -> usize {
            match e {
                Expr::Binary { op: BinOp::And, left, right } => {
                    1 + count_ands(left) + count_ands(right)
                }
                _ => 0,
            }
        }
        assert_eq!(count_ands(&e), 4);
    }

    #[test]
    fn in_list() {
        let e = expr("disease IN ('cancer', 'diabetic')");
        match e {
            Expr::InList { list, negated: false, .. } => assert_eq!(list.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_on_missing_operand() {
        assert!(Parser::new("a = ").unwrap().parse_expr().is_err());
        let mut p = Parser::new("a AND").unwrap();
        let r = p.parse_expr().and_then(|_| p.expect_eof());
        assert!(r.is_err());
    }
}
