//! `SELECT` parsing.

use super::Parser;
use crate::ast::{OrderItem, Query, SelectItem, TableRef};
use crate::error::ParseError;
use crate::token::TokenKind;

impl Parser {
    /// Parses a `SELECT [DISTINCT] items FROM tables [WHERE pred]` query.
    pub fn parse_select(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");

        let mut projection = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            projection.push(self.parse_select_item()?);
        }

        self.expect_keyword("from")?;
        let from = self.parse_table_list()?;

        let selection = if self.eat_keyword("where") { Some(self.parse_expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("limit") {
            match self.peek().clone() {
                TokenKind::Int(n) if n >= 0 => {
                    self.advance();
                    Some(n as u64)
                }
                other => {
                    return Err(
                        self.error(format!("expected a row count after LIMIT, found {other}"))
                    )
                }
            }
        } else {
            None
        };

        Ok(Query { distinct, projection, from, selection, order_by, limit })
    }

    pub(crate) fn parse_table_list(&mut self) -> Result<Vec<TableRef>, ParseError> {
        let mut from = vec![self.parse_table_ref()?];
        while self.eat(&TokenKind::Comma) {
            from.push(self.parse_table_ref()?);
        }
        Ok(from)
    }

    /// `[AS] alias` — the AS keyword is optional; a bare non-reserved word
    /// also aliases.
    fn parse_optional_alias(&mut self) -> Result<Option<crate::ast::Ident>, ParseError> {
        if self.eat_keyword("as")
            || matches!(self.peek(), TokenKind::Word(w) if !super::RESERVED.contains(&w.to_ascii_lowercase().as_str()))
        {
            Ok(Some(self.parse_ident()?))
        } else {
            Ok(None)
        }
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.parse_ident()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableRef { name, alias })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `table.*`
        if matches!(self.peek(), TokenKind::Word(_) | TokenKind::QuotedIdent(_))
            && self.peek_at(1) == &TokenKind::Dot
            && self.peek_at(2) == &TokenKind::Star
        {
            let table = self.parse_ident()?;
            self.advance(); // .
            self.advance(); // *
            return Ok(SelectItem::QualifiedWildcard(table));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ColumnRef, Expr, Ident};

    fn select(src: &str) -> Query {
        let mut p = Parser::new(src).unwrap();
        let q = p.parse_select().unwrap();
        p.expect_eof().unwrap();
        q
    }

    #[test]
    fn paper_query_from_section_2_1() {
        let q = select("SELECT zipcode FROM Patients WHERE disease='cancer'");
        assert_eq!(q.projection.len(), 1);
        assert_eq!(q.from, vec![TableRef::named("Patients")]);
        assert!(q.selection.is_some());
    }

    #[test]
    fn star_projection() {
        let q = select("SELECT * FROM P-Personal");
        assert_eq!(q.projection, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn qualified_star() {
        let q = select("SELECT P-Personal.* FROM P-Personal, P-Health");
        assert_eq!(q.projection, vec![SelectItem::QualifiedWildcard(Ident::new("P-Personal"))]);
    }

    #[test]
    fn aliases_with_and_without_as() {
        let q = select("SELECT p.name AS n, p.age a FROM Patients AS p");
        match &q.projection[0] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, &Ident::new("n")),
            other => panic!("{other:?}"),
        }
        match &q.projection[1] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, &Ident::new("a")),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.from[0].alias, Some(Ident::new("p")));
        assert_eq!(q.from[0].binding(), &Ident::new("p"));
    }

    #[test]
    fn multi_table_join() {
        let q = select(
            "SELECT name, disease FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid",
        );
        assert_eq!(q.from.len(), 2);
    }

    #[test]
    fn distinct_flag() {
        assert!(select("SELECT DISTINCT zipcode FROM Patients").distinct);
        assert!(!select("SELECT zipcode FROM Patients").distinct);
    }

    #[test]
    fn backlog_table_names() {
        let q = select("SELECT age FROM b-P-Personal WHERE age < 30");
        assert_eq!(q.from[0].name, Ident::new("b-P-Personal"));
    }

    #[test]
    fn missing_from_is_an_error() {
        assert!(Parser::new("SELECT a WHERE b = 1").unwrap().parse_select().is_err());
    }

    #[test]
    fn projection_expression() {
        let q = select("SELECT salary + bonus FROM P-Employ");
        match &q.projection[0] {
            SelectItem::Expr { expr, .. } => assert!(matches!(expr, Expr::Binary { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_and_limit() {
        let q = select("SELECT name FROM P-Personal ORDER BY age DESC, name LIMIT 10");
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].asc);
        assert!(q.order_by[1].asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn explicit_asc() {
        let q = select("SELECT name FROM t ORDER BY name ASC");
        assert!(q.order_by[0].asc);
    }

    #[test]
    fn limit_without_order() {
        let q = select("SELECT name FROM t LIMIT 5");
        assert!(q.order_by.is_empty());
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn limit_requires_count() {
        assert!(Parser::new("SELECT a FROM t LIMIT banana").unwrap().parse_select().is_err());
    }

    #[test]
    fn qualified_column_in_projection() {
        let q = select("SELECT p.name FROM Patients p");
        match &q.projection[0] {
            SelectItem::Expr { expr: Expr::Column(ColumnRef { table: Some(t), .. }), .. } => {
                assert_eq!(t, &Ident::new("p"));
            }
            other => panic!("{other:?}"),
        }
    }
}
