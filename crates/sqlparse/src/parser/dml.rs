//! `INSERT` / `UPDATE` / `DELETE` / `CREATE TABLE` parsing.

use super::Parser;
use crate::ast::{ColumnDef, CreateTable, Delete, Insert, TypeName, Update};
use crate::error::ParseError;
use crate::token::TokenKind;

impl Parser {
    /// Parses `INSERT INTO table [(cols…)] VALUES (…)[, (…)]*`.
    pub fn parse_insert(&mut self) -> Result<Insert, ParseError> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.parse_ident()?;

        let mut columns = Vec::new();
        if self.eat(&TokenKind::LParen) {
            columns.push(self.parse_ident()?);
            while self.eat(&TokenKind::Comma) {
                columns.push(self.parse_ident()?);
            }
            self.expect(&TokenKind::RParen)?;
        }

        self.expect_keyword("values")?;
        let mut rows = vec![self.parse_value_row()?];
        while self.eat(&TokenKind::Comma) {
            rows.push(self.parse_value_row()?);
        }
        Ok(Insert { table, columns, rows })
    }

    fn parse_value_row(&mut self) -> Result<Vec<crate::ast::Expr>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut row = vec![self.parse_expr()?];
        while self.eat(&TokenKind::Comma) {
            row.push(self.parse_expr()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(row)
    }

    /// Parses `UPDATE table SET col = e[, …] [WHERE p]`.
    pub fn parse_update(&mut self) -> Result<Update, ParseError> {
        self.expect_keyword("update")?;
        let table = self.parse_ident()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.parse_ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let selection = if self.eat_keyword("where") { Some(self.parse_expr()?) } else { None };
        Ok(Update { table, assignments, selection })
    }

    /// Parses `DELETE FROM table [WHERE p]`.
    pub fn parse_delete(&mut self) -> Result<Delete, ParseError> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.parse_ident()?;
        let selection = if self.eat_keyword("where") { Some(self.parse_expr()?) } else { None };
        Ok(Delete { table, selection })
    }

    /// Parses `CREATE TABLE name (col type[, …])`.
    pub fn parse_create_table(&mut self) -> Result<CreateTable, ParseError> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let name = self.parse_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.parse_ident()?;
            let ty = self.parse_type_name()?;
            columns.push(ColumnDef { name: col, ty });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(CreateTable { name, columns })
    }

    fn parse_type_name(&mut self) -> Result<TypeName, ParseError> {
        let TokenKind::Word(w) = self.peek().clone() else {
            return Err(self.error(format!("expected a type name, found {}", self.peek())));
        };
        let ty = match w.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" => TypeName::Int,
            "float" | "double" | "real" => TypeName::Float,
            "text" | "varchar" | "char" | "string" => TypeName::Text,
            "bool" | "boolean" => TypeName::Bool,
            "timestamp" | "datetime" => TypeName::Timestamp,
            other => return Err(self.error(format!("unknown type name {other:?}"))),
        };
        self.advance();
        // Tolerate a parenthesized length, e.g. VARCHAR(64).
        if self.eat(&TokenKind::LParen) {
            match self.peek() {
                TokenKind::Int(_) => {
                    self.advance();
                }
                other => return Err(self.error(format!("expected a length, found {other}"))),
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Ident, Literal};

    #[test]
    fn insert_with_columns() {
        let mut p = Parser::new(
            "INSERT INTO P-Personal (pid, name, age) VALUES ('p1', 'Jane', 25), ('p2', 'Reku', 35)",
        )
        .unwrap();
        let ins = p.parse_insert().unwrap();
        assert_eq!(ins.table, Ident::new("P-Personal"));
        assert_eq!(ins.columns.len(), 3);
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[0][2], Expr::Literal(Literal::Int(25)));
    }

    #[test]
    fn insert_without_columns() {
        let mut p = Parser::new("INSERT INTO t VALUES (1, 'x')").unwrap();
        let ins = p.parse_insert().unwrap();
        assert!(ins.columns.is_empty());
    }

    #[test]
    fn update_with_where() {
        let mut p =
            Parser::new("UPDATE P-Personal SET zipcode = '120016', age = 26 WHERE pid = 'p1'")
                .unwrap();
        let up = p.parse_update().unwrap();
        assert_eq!(up.assignments.len(), 2);
        assert!(up.selection.is_some());
    }

    #[test]
    fn update_without_where_hits_all() {
        let mut p = Parser::new("UPDATE t SET a = 1").unwrap();
        assert!(p.parse_update().unwrap().selection.is_none());
    }

    #[test]
    fn delete_forms() {
        let mut p = Parser::new("DELETE FROM t WHERE a = 1").unwrap();
        assert!(p.parse_delete().unwrap().selection.is_some());
        let mut p = Parser::new("DELETE FROM t").unwrap();
        assert!(p.parse_delete().unwrap().selection.is_none());
    }

    #[test]
    fn create_table_types() {
        let mut p = Parser::new(
            "CREATE TABLE P-Personal (pid text, name varchar(64), age int, wealthy bool, seen timestamp, score float)",
        )
        .unwrap();
        let ct = p.parse_create_table().unwrap();
        assert_eq!(ct.columns.len(), 6);
        assert_eq!(ct.columns[1].ty, TypeName::Text);
        assert_eq!(ct.columns[2].ty, TypeName::Int);
        assert_eq!(ct.columns[3].ty, TypeName::Bool);
        assert_eq!(ct.columns[4].ty, TypeName::Timestamp);
        assert_eq!(ct.columns[5].ty, TypeName::Float);
    }

    #[test]
    fn unknown_type_is_an_error() {
        let mut p = Parser::new("CREATE TABLE t (a blob)").unwrap();
        assert!(p.parse_create_table().is_err());
    }
}
