//! Audit-expression parsing (paper Fig. 7, with Fig. 1 compatibility).

use super::Parser;
use crate::ast::{
    AttrGroup, AttrItem, AttrNode, AttrSpec, AuditExpr, Ident, RolePurposePattern, Threshold,
    TimeInterval, TsSpec,
};
use crate::error::ParseError;
use crate::time::Timestamp;
use crate::token::TokenKind;

impl Parser {
    /// Parses a complete audit expression and requires EOF after it.
    pub fn parse_audit_eof(&mut self) -> Result<AuditExpr, ParseError> {
        let a = self.parse_audit_expr()?;
        self.expect_eof()?;
        Ok(a)
    }

    /// Parses the clauses of Fig. 7. Clauses may appear in any order before
    /// `AUDIT`; each may appear at most once.
    pub fn parse_audit_expr(&mut self) -> Result<AuditExpr, ParseError> {
        let mut out = AuditExpr::basic(AttrSpec::default(), Vec::new(), None);
        let mut seen: Vec<&'static str> = Vec::new();

        let mut require_once = |name: &'static str, this: &Parser| -> Result<(), ParseError> {
            if seen.contains(&name) {
                return Err(this.error(format!("duplicate {name} clause")));
            }
            seen.push(name);
            Ok(())
        };

        loop {
            if self.eat_keyword("neg-role-purpose") {
                require_once("Neg-Role-Purpose", self)?;
                out.neg_role_purpose = self.parse_role_purpose_list()?;
            } else if self.eat_keyword("pos-role-purpose") {
                require_once("Pos-Role-Purpose", self)?;
                out.pos_role_purpose = self.parse_role_purpose_list()?;
            } else if self.eat_keyword("neg-user-identity") {
                require_once("Neg-User-Identity", self)?;
                out.neg_users = self.parse_user_list()?;
            } else if self.eat_keyword("pos-user-identity") {
                require_once("Pos-User-Identity", self)?;
                out.pos_users = self.parse_user_list()?;
            } else if self.eat_keyword("otherthan") {
                require_once("OTHERTHAN PURPOSE", self)?;
                self.expect_keyword("purpose")?;
                out.otherthan_purposes = self.parse_user_list()?;
                if out.otherthan_purposes.is_empty() {
                    return Err(self.error("OTHERTHAN PURPOSE requires at least one purpose"));
                }
            } else if self.eat_keyword("during") {
                require_once("DURING", self)?;
                out.during = Some(self.parse_time_interval()?);
            } else if self.eat_keyword("data-interval") {
                require_once("DATA-INTERVAL", self)?;
                out.data_interval = Some(self.parse_time_interval()?);
            } else if self.eat_keyword("threshold") {
                require_once("THRESHOLD", self)?;
                out.threshold = self.parse_threshold()?;
            } else if self.eat_keyword("indispensable") {
                require_once("INDISPENSABLE", self)?;
                self.eat(&TokenKind::Eq); // `INDISPENSABLE = true` form of Figs. 4-6
                out.indispensable = self.parse_bool_word()?;
            } else if self.eat_keyword("audit") {
                out.audit = self.parse_attr_spec()?;
                self.expect_keyword("from")?;
                out.from = self.parse_table_list()?;
                if self.eat_keyword("where") {
                    out.selection = Some(self.parse_expr()?);
                }
                if out.audit.nodes.is_empty() {
                    return Err(self.error("AUDIT clause requires at least one attribute"));
                }
                return Ok(out);
            } else {
                return Err(self.error(format!(
                    "expected an audit clause (AUDIT, DURING, DATA-INTERVAL, THRESHOLD, \
                     INDISPENSABLE, OTHERTHAN PURPOSE, Neg/Pos-Role-Purpose, \
                     Neg/Pos-User-Identity), found {}",
                    self.peek()
                )));
            }
        }
    }

    fn parse_bool_word(&mut self) -> Result<bool, ParseError> {
        if self.eat_keyword("true") {
            Ok(true)
        } else if self.eat_keyword("false") {
            Ok(false)
        } else {
            Err(self.error(format!("expected true or false, found {}", self.peek())))
        }
    }

    fn parse_threshold(&mut self) -> Result<Threshold, ParseError> {
        self.eat(&TokenKind::Eq);
        match self.peek().clone() {
            TokenKind::Int(n) if n >= 1 => {
                self.advance();
                Ok(Threshold::Count(n as u64))
            }
            TokenKind::Int(_) => Err(self.error("THRESHOLD must be at least 1")),
            k if k.is_keyword("all") => {
                self.advance();
                Ok(Threshold::All)
            }
            other => {
                Err(self.error(format!("expected a count or ALL after THRESHOLD, found {other}")))
            }
        }
    }

    /// `{(r,pr) | (r,-) | (-,pr)}*` with optional commas between patterns.
    fn parse_role_purpose_list(&mut self) -> Result<Vec<RolePurposePattern>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.at_audit_clause_boundary() {
                break;
            }
            self.expect(&TokenKind::LParen)?;
            let role = self.parse_wildcardable_name()?;
            self.expect(&TokenKind::Comma)?;
            let purpose = self.parse_wildcardable_name()?;
            self.expect(&TokenKind::RParen)?;
            if role.is_none() && purpose.is_none() {
                return Err(self.error("(-,-) would exclude everything; omit the clause instead"));
            }
            out.push(RolePurposePattern { role, purpose });
            self.eat(&TokenKind::Comma);
        }
        if out.is_empty() {
            return Err(
                self.error("role-purpose clause requires at least one (role, purpose) pattern")
            );
        }
        Ok(out)
    }

    fn parse_wildcardable_name(&mut self) -> Result<Option<Ident>, ParseError> {
        if self.eat(&TokenKind::Minus) {
            Ok(None)
        } else {
            Ok(Some(self.parse_name_like()?))
        }
    }

    /// A list of names (user ids or purposes), comma- or space-separated,
    /// running until the next clause keyword.
    fn parse_user_list(&mut self) -> Result<Vec<Ident>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.at_audit_clause_boundary() {
                break;
            }
            match self.peek().clone() {
                TokenKind::Int(n) => {
                    self.advance();
                    out.push(Ident::new(n.to_string()));
                }
                TokenKind::Word(_) | TokenKind::QuotedIdent(_) | TokenKind::StringLit(_) => {
                    out.push(self.parse_name_like()?);
                }
                other => return Err(self.error(format!("expected a name, found {other}"))),
            }
            self.eat(&TokenKind::Comma);
        }
        if out.is_empty() {
            return Err(self.error("identity clause requires at least one name"));
        }
        Ok(out)
    }

    /// `t1 TO t2` where each endpoint is `now()`, a paper-style
    /// `D/M/YYYY[:HH-MM-SS]` literal, or a quoted timestamp string.
    pub(crate) fn parse_time_interval(&mut self) -> Result<TimeInterval, ParseError> {
        let start = self.parse_ts_spec()?;
        self.expect_keyword("to")?;
        let end = self.parse_ts_spec()?;
        Ok(TimeInterval { start, end })
    }

    fn parse_ts_spec(&mut self) -> Result<TsSpec, ParseError> {
        match self.peek().clone() {
            TokenKind::Word(w) if w.eq_ignore_ascii_case("now") => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                Ok(TsSpec::Now)
            }
            TokenKind::StringLit(s) => {
                let span = self.peek_span();
                self.advance();
                Timestamp::parse(&s).map(TsSpec::At).ok_or_else(|| {
                    ParseError::new(format!("invalid timestamp literal {s:?}"), span)
                })
            }
            TokenKind::Int(_) => self.parse_paper_timestamp().map(TsSpec::At),
            other => Err(self.error(format!("expected a timestamp or now(), found {other}"))),
        }
    }

    /// Assembles `D/M/YYYY[:HH-MM-SS]` from the arithmetic tokens it lexes
    /// into (see the lexer docs).
    fn parse_paper_timestamp(&mut self) -> Result<Timestamp, ParseError> {
        let span = self.peek_span();
        let day = self.parse_small_int()?;
        self.expect(&TokenKind::Slash)?;
        let month = self.parse_small_int()?;
        self.expect(&TokenKind::Slash)?;
        let year = self.parse_small_int()?;
        let (mut h, mut mi, mut s) = (0, 0, 0);
        if self.eat(&TokenKind::Colon) {
            h = self.parse_small_int()?;
            self.expect(&TokenKind::Minus)?;
            mi = self.parse_small_int()?;
            self.expect(&TokenKind::Minus)?;
            s = self.parse_small_int()?;
        }
        Timestamp::from_ymd_hms(year, month as u32, day as u32, h as u32, mi as u32, s as u32)
            .ok_or_else(|| {
                ParseError::new(
                    format!("invalid timestamp {day}/{month}/{year}:{h:02}-{mi:02}-{s:02}"),
                    span,
                )
            })
    }

    fn parse_small_int(&mut self) -> Result<i64, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(n) if (0..=10_000).contains(&n) => {
                self.advance();
                Ok(n)
            }
            other => Err(self.error(format!("expected a timestamp field, found {other}"))),
        }
    }

    /// Parses the audit-attribute specification — a sequence of bare items,
    /// `(mandatory…)` groups and `[optional…]` groups, with optional commas
    /// between top-level nodes, terminated by `FROM`.
    pub(crate) fn parse_attr_spec(&mut self) -> Result<AttrSpec, ParseError> {
        let mut nodes = Vec::new();
        loop {
            if self.peek().is_keyword("from") || self.peek() == &TokenKind::Eof {
                break;
            }
            nodes.push(self.parse_attr_node()?);
            self.eat(&TokenKind::Comma);
        }
        Ok(AttrSpec { nodes })
    }

    fn parse_attr_node(&mut self) -> Result<AttrNode, ParseError> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.advance();
                let members = self.parse_attr_members(&TokenKind::RParen)?;
                Ok(AttrNode::Group(AttrGroup::Mandatory(members)))
            }
            TokenKind::LBracket => {
                self.advance();
                let members = self.parse_attr_members(&TokenKind::RBracket)?;
                Ok(AttrNode::Group(AttrGroup::Optional(members)))
            }
            TokenKind::Star => {
                self.advance();
                Ok(AttrNode::Item(AttrItem::Star))
            }
            _ => Ok(AttrNode::Item(AttrItem::Column(self.parse_column_ref()?))),
        }
    }

    fn parse_attr_members(&mut self, close: &TokenKind) -> Result<Vec<AttrNode>, ParseError> {
        let mut members = Vec::new();
        loop {
            if self.eat(close) {
                if members.is_empty() {
                    return Err(self.error("empty attribute group"));
                }
                return Ok(members);
            }
            members.push(self.parse_attr_node()?);
            if !self.eat(&TokenKind::Comma) {
                self.expect(close)?;
                if members.is_empty() {
                    return Err(self.error("empty attribute group"));
                }
                return Ok(members);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnRef;
    use crate::parse_audit;

    #[test]
    fn fig1_agrawal_style() {
        let a = parse_audit(
            "OTHERTHAN PURPOSE marketing, telemarketing \
             DURING 1/1/2004 TO 31/12/2004 \
             AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        assert_eq!(a.otherthan_purposes.len(), 2);
        assert!(a.during.is_some());
        assert_eq!(a.from.len(), 1);
        assert_eq!(a.audit.nodes.len(), 1);
    }

    #[test]
    fn fig2_audit_expression_1() {
        let a = parse_audit("Audit name, age, address FROM P-Personal WHERE age < 30").unwrap();
        assert_eq!(a.audit.nodes.len(), 3);
        assert_eq!(a.from[0].name, Ident::new("P-Personal"));
    }

    #[test]
    fn fig3_audit_expression_2() {
        let a = parse_audit(
            "Audit name, disease, address \
             FROM P-Personal, P-Health, P-Employ \
             WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
                   P-Personal.zipcode=145568 and P-Employ.salary > 10000 and \
                   P-Health.disease='diabetic'",
        )
        .unwrap();
        assert_eq!(a.from.len(), 3);
        assert!(a.selection.is_some());
    }

    #[test]
    fn fig4_perfect_privacy_star() {
        let a = parse_audit(
            "INDISPENSABLE = true \
             AUDIT [*] FROM P-Personal, P-Health, P-Employ \
             WHERE P-Personal.pid=P-Health.pid and P-Personal.name='Reku'",
        )
        .unwrap();
        assert!(a.indispensable);
        assert_eq!(
            a.audit.nodes,
            vec![AttrNode::Group(AttrGroup::Optional(vec![AttrNode::Item(AttrItem::Star)]))]
        );
    }

    #[test]
    fn fig5_optional_list() {
        let a = parse_audit(
            "INDISPENSABLE = true \
             AUDIT [name, disease, address, P-Personal.pid, zipcode, salary] \
             FROM P-Personal, P-Health, P-Employ \
             WHERE P-Personal.pid=P-Health.pid",
        )
        .unwrap();
        match &a.audit.nodes[0] {
            AttrNode::Group(AttrGroup::Optional(members)) => assert_eq!(members.len(), 6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fig6_mandatory_group() {
        let a = parse_audit(
            "AUDIT (name, disease, address) FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid",
        )
        .unwrap();
        match &a.audit.nodes[0] {
            AttrNode::Group(AttrGroup::Mandatory(members)) => assert_eq!(members.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mixed_mandatory_optional() {
        let a = parse_audit("AUDIT (a, b), [c, d] FROM t").unwrap();
        assert_eq!(a.audit.nodes.len(), 2);
        // and without the comma, as the paper writes `(a,b)[c]`
        let b = parse_audit("AUDIT (a, b)[c, d] FROM t").unwrap();
        assert_eq!(a.audit, b.audit);
    }

    #[test]
    fn nested_groups_rule6() {
        let a = parse_audit("AUDIT [(a, b)] FROM t").unwrap();
        match &a.audit.nodes[0] {
            AttrNode::Group(AttrGroup::Optional(members)) => {
                assert!(matches!(members[0], AttrNode::Group(AttrGroup::Mandatory(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_interval_with_now() {
        let a = parse_audit(
            "DATA-INTERVAL 1/5/2004:13-00-00 to now() \
             Audit name, age, address From b-P-Personal Where age < 30",
        )
        .unwrap();
        let iv = a.data_interval.unwrap();
        assert_eq!(iv.start, TsSpec::At(Timestamp::from_ymd_hms(2004, 5, 1, 13, 0, 0).unwrap()));
        assert_eq!(iv.end, TsSpec::Now);
    }

    #[test]
    fn threshold_forms() {
        assert_eq!(
            parse_audit("THRESHOLD 3 AUDIT a FROM t").unwrap().threshold,
            Threshold::Count(3)
        );
        assert_eq!(parse_audit("THRESHOLD ALL AUDIT a FROM t").unwrap().threshold, Threshold::All);
        assert!(parse_audit("THRESHOLD 0 AUDIT a FROM t").is_err());
    }

    #[test]
    fn role_purpose_patterns() {
        let a = parse_audit(
            "Neg-Role-Purpose (nurse, billing) (doctor, -) (-, marketing) \
             Pos-User-Identity u-17, u-42 \
             AUDIT disease FROM Patients",
        )
        .unwrap();
        assert_eq!(a.neg_role_purpose.len(), 3);
        assert_eq!(
            a.neg_role_purpose[1],
            RolePurposePattern { role: Some(Ident::new("doctor")), purpose: None }
        );
        assert_eq!(
            a.neg_role_purpose[2],
            RolePurposePattern { role: None, purpose: Some(Ident::new("marketing")) }
        );
        assert_eq!(a.pos_users, vec![Ident::new("u-17"), Ident::new("u-42")]);
    }

    #[test]
    fn double_wildcard_rejected() {
        assert!(parse_audit("Neg-Role-Purpose (-,-) AUDIT a FROM t").is_err());
    }

    #[test]
    fn duplicate_clause_rejected() {
        assert!(parse_audit("THRESHOLD 2 THRESHOLD 3 AUDIT a FROM t").is_err());
    }

    #[test]
    fn clause_order_is_free() {
        let a = parse_audit(
            "THRESHOLD 2 DURING 1/1/2004 TO 2/1/2004 INDISPENSABLE false AUDIT a FROM t",
        )
        .unwrap();
        let b = parse_audit(
            "INDISPENSABLE false DURING 1/1/2004 TO 2/1/2004 THRESHOLD 2 AUDIT a FROM t",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn qualified_audit_attributes() {
        let a = parse_audit("AUDIT P-Personal.name FROM P-Personal").unwrap();
        match &a.audit.nodes[0] {
            AttrNode::Item(AttrItem::Column(ColumnRef { table: Some(t), .. })) => {
                assert_eq!(t, &Ident::new("P-Personal"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn iso_timestamps_in_quotes() {
        let a = parse_audit("DURING '2004-05-01 13:00:00' TO '2004-05-02' AUDIT a FROM t").unwrap();
        let (s, e) = a.during.unwrap().resolve(Timestamp(0));
        assert_eq!(s, Timestamp::from_ymd_hms(2004, 5, 1, 13, 0, 0).unwrap());
        assert_eq!(e, Timestamp::from_ymd(2004, 5, 2).unwrap());
    }

    #[test]
    fn empty_audit_list_rejected() {
        assert!(parse_audit("AUDIT FROM t").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_audit("AUDIT a FROM t;").is_ok());
    }

    #[test]
    fn invalid_timestamp_is_error() {
        assert!(parse_audit("DURING 32/1/2004 TO now() AUDIT a FROM t").is_err());
    }
}
