//! The lexer.
//!
//! One deliberate deviation from mainstream SQL lexing: the paper names its
//! relations and attributes with interior hyphens (`P-Personal`, `P-Health`,
//! `pres-drugs`, `b-P-Personal`) and its clauses likewise
//! (`DATA-INTERVAL`, `Neg-Role-Purpose`, `Pos-User-Identity`). To accept the
//! paper's surface syntax verbatim, a `-` **joins** a word when it is
//! immediately adjacent to word characters on its left and a letter or `_`
//! on its right (no whitespace on either side). Consequently `salary-bonus`
//! lexes as a single identifier; write `salary - bonus` (with spaces) for
//! subtraction. A `-` followed by a digit is always an operator, so
//! `age-1` and timestamp fragments like `13-00-00` lex arithmetically.

use crate::error::{ParseError, Span};
use crate::token::{Token, TokenKind};

/// Streaming lexer over source text.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    /// Lexes the entire input, appending a final [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span { start: start.0, end: self.pos, line: start.1, column: start.2 }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    self.span_from(start),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn is_word_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_'
    }

    fn is_word_continue(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_'
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let start = self.here();
        let Some(b) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, span: self.span_from(start) });
        };

        let kind = match b {
            b if Self::is_word_start(b) => return self.lex_word(start),
            b if b.is_ascii_digit() => return self.lex_number(start),
            b'\'' => return self.lex_string(start),
            b'"' => return self.lex_quoted_ident(start),
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                }
                TokenKind::Eq
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new("expected '=' after '!'", self.span_from(start)));
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::LtEq
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {:?}", other as char),
                    Span { start: self.pos, end: self.pos + 1, line: self.line, column: self.col },
                ))
            }
        };
        Ok(Token { kind, span: self.span_from(start) })
    }

    fn lex_word(&mut self, start: (usize, u32, u32)) -> Result<Token, ParseError> {
        loop {
            match self.peek() {
                Some(b) if Self::is_word_continue(b) => {
                    self.bump();
                }
                // Hyphen joins only when immediately followed by a letter or
                // underscore: `P-Personal` joins, `age-1` does not.
                Some(b'-') if self.peek_at(1).is_some_and(Self::is_word_start) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let text = &self.src[start.0..self.pos];
        Ok(Token { kind: TokenKind::Word(text.to_string()), span: self.span_from(start) })
    }

    fn lex_number(&mut self, start: (usize, u32, u32)) -> Result<Token, ParseError> {
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = &self.src[start.0..self.pos];
        let kind = if is_float {
            let v: f64 = text.parse().map_err(|_| {
                ParseError::new(format!("invalid float literal {text:?}"), self.span_from(start))
            })?;
            TokenKind::Float(v)
        } else {
            let v: i64 = text.parse().map_err(|_| {
                ParseError::new(
                    format!("integer literal {text:?} out of range"),
                    self.span_from(start),
                )
            })?;
            TokenKind::Int(v)
        };
        Ok(Token { kind, span: self.span_from(start) })
    }

    fn lex_string(&mut self, start: (usize, u32, u32)) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        // '' escapes a quote inside a string.
                        self.bump();
                        value.push('\'');
                    } else {
                        break;
                    }
                }
                Some(b) => value.push(b as char),
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        self.span_from(start),
                    ));
                }
            }
        }
        Ok(Token { kind: TokenKind::StringLit(value), span: self.span_from(start) })
    }

    fn lex_quoted_ident(&mut self, start: (usize, u32, u32)) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        value.push('"');
                    } else {
                        break;
                    }
                }
                Some(b) => value.push(b as char),
                None => {
                    return Err(ParseError::new(
                        "unterminated quoted identifier",
                        self.span_from(start),
                    ));
                }
            }
        }
        if value.is_empty() {
            return Err(ParseError::new("empty quoted identifier", self.span_from(start)));
        }
        Ok(Token { kind: TokenKind::QuotedIdent(value), span: self.span_from(start) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != TokenKind::Eof)
            .collect()
    }

    #[test]
    fn hyphenated_table_names_join() {
        assert_eq!(kinds("P-Personal"), vec![TokenKind::Word("P-Personal".into())]);
        assert_eq!(kinds("b-P-Personal"), vec![TokenKind::Word("b-P-Personal".into())]);
        assert_eq!(kinds("pres-drugs"), vec![TokenKind::Word("pres-drugs".into())]);
    }

    #[test]
    fn hyphen_before_digit_is_minus() {
        assert_eq!(
            kinds("age-1"),
            vec![TokenKind::Word("age".into()), TokenKind::Minus, TokenKind::Int(1)]
        );
    }

    #[test]
    fn spaced_hyphen_is_minus() {
        assert_eq!(
            kinds("salary - bonus"),
            vec![
                TokenKind::Word("salary".into()),
                TokenKind::Minus,
                TokenKind::Word("bonus".into())
            ]
        );
    }

    #[test]
    fn clause_keywords_join() {
        assert_eq!(kinds("DATA-INTERVAL"), vec![TokenKind::Word("DATA-INTERVAL".into())]);
        assert_eq!(kinds("Neg-Role-Purpose"), vec![TokenKind::Word("Neg-Role-Purpose".into())]);
    }

    #[test]
    fn paper_predicate_lexes() {
        assert_eq!(
            kinds("P-Personal.zipcode=145568"),
            vec![
                TokenKind::Word("P-Personal".into()),
                TokenKind::Dot,
                TokenKind::Word("zipcode".into()),
                TokenKind::Eq,
                TokenKind::Int(145568),
            ]
        );
    }

    #[test]
    fn timestamp_fragment_lexes_arithmetically() {
        assert_eq!(
            kinds("1/5/2004:13-00-00"),
            vec![
                TokenKind::Int(1),
                TokenKind::Slash,
                TokenKind::Int(5),
                TokenKind::Slash,
                TokenKind::Int(2004),
                TokenKind::Colon,
                TokenKind::Int(13),
                TokenKind::Minus,
                TokenKind::Int(0),
                TokenKind::Minus,
                TokenKind::Int(0),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds("'cancer'"), vec![TokenKind::StringLit("cancer".into())]);
        assert_eq!(kinds("'it''s'"), vec![TokenKind::StringLit("it's".into())]);
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(kinds(r#""select""#), vec![TokenKind::QuotedIdent("select".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = != <>"),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
            ]
        );
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            kinds("select -- hi\n x /* and\nthis */ y"),
            vec![
                TokenKind::Word("select".into()),
                TokenKind::Word("x".into()),
                TokenKind::Word("y".into()),
            ]
        );
    }

    #[test]
    fn floats_and_ints() {
        assert_eq!(kinds("3.25 7"), vec![TokenKind::Float(3.25), TokenKind::Int(7)]);
    }

    #[test]
    fn errors_carry_position() {
        let err = Lexer::new("a ?").tokenize().unwrap_err();
        assert_eq!(err.span.line, 1);
        assert_eq!(err.span.column, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'oops").tokenize().is_err());
        assert!(Lexer::new("\"oops").tokenize().is_err());
        assert!(Lexer::new("/* oops").tokenize().is_err());
    }

    #[test]
    fn brackets_for_attr_groups() {
        assert_eq!(
            kinds("[name,disease]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Word("name".into()),
                TokenKind::Comma,
                TokenKind::Word("disease".into()),
                TokenKind::RBracket,
            ]
        );
    }
}
