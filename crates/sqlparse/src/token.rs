//! Token kinds produced by the lexer.

use crate::error::Span;
use std::fmt;

/// A token kind. Keywords are not distinguished at the lexer level: any word
/// lexes to [`TokenKind::Word`] and the parser matches keywords
/// case-insensitively, which keeps the paper's hyphenated clause names
/// (`DATA-INTERVAL`, `Neg-Role-Purpose`) and hyphenated table names
/// (`P-Personal`) in one uniform mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare word: identifier or keyword, possibly with interior hyphens.
    Word(String),
    /// A `"double quoted"` identifier (never a keyword).
    QuotedIdent(String),
    /// A `'single quoted'` string literal.
    StringLit(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True when this token is the given keyword (ASCII case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::QuotedIdent(w) => write!(f, "\"{w}\""),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Eof => f.write_str("<end of input>"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_match_is_case_insensitive() {
        let t = TokenKind::Word("SeLeCt".into());
        assert!(t.is_keyword("select"));
        assert!(t.is_keyword("SELECT"));
        assert!(!t.is_keyword("from"));
    }

    #[test]
    fn quoted_ident_is_never_keyword() {
        let t = TokenKind::QuotedIdent("select".into());
        assert!(!t.is_keyword("select"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::NotEq.to_string(), "<>");
        assert_eq!(TokenKind::StringLit("x".into()).to_string(), "'x'");
    }
}
