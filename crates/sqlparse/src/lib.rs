//! `audex-sql` — SQL and audit-expression front end for the `audex` project.
//!
//! This crate implements, from scratch, everything the auditing framework of
//! Goyal, Gupta & Gupta ("A Unified Audit Expression Model for Auditing SQL
//! Queries", ICDE 2008) needs from a SQL front end:
//!
//! * a lexer ([`lexer::Lexer`]) tolerant of the paper's hyphenated
//!   identifiers (`P-Personal`, `pres-drugs`, `b-P-Personal`) and clause
//!   keywords (`DATA-INTERVAL`, `Neg-Role-Purpose`),
//! * an AST ([`ast`]) for the select-project-join (SPJ) query fragment the
//!   paper formalizes as `Q = π_C(σ_P(T × R))`, plus the DML statements
//!   (`INSERT` / `UPDATE` / `DELETE` / `CREATE TABLE`) that drive the
//!   backlog-versioning substrate,
//! * a recursive-descent / Pratt parser ([`parser`]) for those statements
//!   **and** for the paper's full audit-expression grammar (Fig. 7),
//!   including the legacy Agrawal et al. syntax of Fig. 1,
//! * civil-time handling ([`time`]) for the paper's `1/5/2004:13-00-00`
//!   timestamp literals and the `now()` marker, with no external crates,
//! * a pretty printer ([`display`]) such that `parse ∘ print = id`.
//!
//! # Quick example
//!
//! ```
//! use audex_sql::parse_audit;
//!
//! let audit = parse_audit(
//!     "AUDIT disease FROM Patients WHERE zipcode = '118701'",
//! ).unwrap();
//! assert_eq!(audit.from.len(), 1);
//! assert!(audit.indispensable); // paper default
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod time;
pub mod token;

pub use ast::{
    AttrGroup, AttrNode, AttrSpec, AuditExpr, ColumnRef, Expr, Ident, Literal, Query, Statement,
};
pub use error::{ParseError, Span};
pub use time::Timestamp;

/// Parses a single SQL statement (`SELECT`, `INSERT`, `UPDATE`, `DELETE`, or
/// `CREATE TABLE`).
pub fn parse_statement(sql: &str) -> Result<ast::Statement, ParseError> {
    parser::Parser::new(sql)?.parse_statement_eof()
}

/// Parses a single SPJ `SELECT` query, rejecting other statement kinds.
pub fn parse_query(sql: &str) -> Result<ast::Query, ParseError> {
    match parse_statement(sql)? {
        ast::Statement::Select(q) => Ok(q),
        other => Err(ParseError::new(
            format!("expected a SELECT query, found {}", other.kind_name()),
            Span::start(),
        )),
    }
}

/// Parses an audit expression in the unified grammar of the paper's Fig. 7
/// (which subsumes the Fig. 1 syntax of Agrawal et al.).
pub fn parse_audit(text: &str) -> Result<ast::AuditExpr, ParseError> {
    parser::Parser::new(text)?.parse_audit_eof()
}

/// Parses a semicolon-separated script of SQL statements.
///
/// Empty statements (stray semicolons, trailing whitespace) are skipped.
pub fn parse_script(sql: &str) -> Result<Vec<ast::Statement>, ParseError> {
    parser::Parser::new(sql)?.parse_script()
}
