//! Pretty printing. The invariant maintained (and property-tested) across
//! the crate is `parse(print(ast)) == ast` for every parser-producible AST.

use crate::ast::*;
use crate::parser::RESERVED;
use std::fmt;

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Quote unless the value re-lexes as one bare word: leading letter or
        // underscore, word characters after, and every hyphen immediately
        // followed by a letter or underscore (see the lexer's hyphen rule).
        let lexes_as_word = {
            let b = self.value.as_bytes();
            !b.is_empty()
                && (b[0].is_ascii_alphabetic() || b[0] == b'_')
                && b.iter().enumerate().skip(1).all(|(i, &c)| {
                    c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'-'
                            && b.get(i + 1).is_some_and(|&n| n.is_ascii_alphabetic() || n == b'_'))
                })
        };
        let needs_quotes = self.quoted
            || RESERVED.contains(&self.value.to_ascii_lowercase().as_str())
            || !lexes_as_word;
        if needs_quotes {
            write!(f, "\"{}\"", self.value.replace('"', "\"\""))
        } else {
            f.write_str(&self.value)
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.table {
            write!(f, "{t}.")?;
        }
        write!(f, "{}", self.column)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Bool(true) => f.write_str("TRUE"),
            Literal::Bool(false) => f.write_str("FALSE"),
            Literal::Int(v) => write!(f, "{v}"),
            // {:?} keeps a decimal point so the literal re-lexes as a float.
            Literal::Float(v) => write!(f, "{v:?}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Ts(t) => write!(f, "'{t}'"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        })
    }
}

fn bin_power(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
    }
}

impl Expr {
    /// Prints with minimal parentheses; `min_power` is the loosest binding
    /// power allowed here without parenthesizing.
    fn fmt_with(&self, f: &mut fmt::Formatter<'_>, min_power: u8) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Unary { op, expr } => {
                let (text, power) = match op {
                    UnaryOp::Not => ("NOT ", 3u8),
                    UnaryOp::Neg => ("-", 7u8),
                };
                if power < min_power {
                    f.write_str("(")?;
                    f.write_str(text)?;
                    expr.fmt_with(f, power + 1)?;
                    f.write_str(")")
                } else {
                    f.write_str(text)?;
                    expr.fmt_with(f, power + 1)
                }
            }
            Expr::Binary { left, op, right } => {
                let power = bin_power(*op);
                if power < min_power {
                    f.write_str("(")?;
                }
                left.fmt_with(f, power)?;
                write!(f, " {op} ")?;
                right.fmt_with(f, power + 1)?;
                if power < min_power {
                    f.write_str(")")?;
                }
                Ok(())
            }
            Expr::Like { expr, pattern, negated } => self.fmt_comparisonish(f, min_power, |f| {
                expr.fmt_with(f, 5)?;
                f.write_str(if *negated { " NOT LIKE " } else { " LIKE " })?;
                pattern.fmt_with(f, 5)
            }),
            Expr::InList { expr, list, negated } => self.fmt_comparisonish(f, min_power, |f| {
                expr.fmt_with(f, 5)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    e.fmt_with(f, 0)?;
                }
                f.write_str(")")
            }),
            Expr::Between { expr, low, high, negated } => {
                self.fmt_comparisonish(f, min_power, |f| {
                    expr.fmt_with(f, 5)?;
                    f.write_str(if *negated { " NOT BETWEEN " } else { " BETWEEN " })?;
                    low.fmt_with(f, 5)?;
                    f.write_str(" AND ")?;
                    high.fmt_with(f, 5)
                })
            }
            Expr::IsNull { expr, negated } => self.fmt_comparisonish(f, min_power, |f| {
                expr.fmt_with(f, 5)?;
                f.write_str(if *negated { " IS NOT NULL" } else { " IS NULL" })
            }),
        }
    }

    /// LIKE/IN/BETWEEN/IS bind like comparisons (power 4).
    fn fmt_comparisonish(
        &self,
        f: &mut fmt::Formatter<'_>,
        min_power: u8,
        body: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
    ) -> fmt::Result {
        if 4 < min_power {
            f.write_str("(")?;
            body(f)?;
            f.write_str(")")
        } else {
            body(f)
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(f, 0)
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

fn write_list<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        write_list(f, &self.projection)?;
        f.write_str(" FROM ")?;
        write_list(f, &self.from)?;
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            write_list(f, &self.order_by)?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if !self.asc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeName::Int => "INT",
            TypeName::Float => "FLOAT",
            TypeName::Text => "TEXT",
            TypeName::Bool => "BOOL",
            TypeName::Timestamp => "TIMESTAMP",
        })
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Insert(i) => {
                write!(f, "INSERT INTO {}", i.table)?;
                if !i.columns.is_empty() {
                    f.write_str(" (")?;
                    write_list(f, &i.columns)?;
                    f.write_str(")")?;
                }
                f.write_str(" VALUES ")?;
                for (r, row) in i.rows.iter().enumerate() {
                    if r > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    write_list(f, row)?;
                    f.write_str(")")?;
                }
                Ok(())
            }
            Statement::Update(u) => {
                write!(f, "UPDATE {} SET ", u.table)?;
                for (i, (col, val)) in u.assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{col} = {val}")?;
                }
                if let Some(w) = &u.selection {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete(d) => {
                write!(f, "DELETE FROM {}", d.table)?;
                if let Some(w) = &d.selection {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable(c) => {
                write!(f, "CREATE TABLE {} (", c.name)?;
                for (i, col) in c.columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} {}", col.name, col.ty)?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for AttrItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrItem::Column(c) => write!(f, "{c}"),
            AttrItem::Star => f.write_str("*"),
        }
    }
}

impl fmt::Display for AttrNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrNode::Item(i) => write!(f, "{i}"),
            AttrNode::Group(g) => write!(f, "{g}"),
        }
    }
}

impl fmt::Display for AttrGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (open, close, members) = match self {
            AttrGroup::Mandatory(m) => ("(", ")", m),
            AttrGroup::Optional(m) => ("[", "]", m),
        };
        f.write_str(open)?;
        write_list(f, members)?;
        f.write_str(close)
    }
}

impl fmt::Display for AttrSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_list(f, &self.nodes)
    }
}

impl fmt::Display for TsSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsSpec::Now => f.write_str("now()"),
            TsSpec::At(t) => write!(f, "{t}"),
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} TO {}", self.start, self.end)
    }
}

impl fmt::Display for RolePurposePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        match &self.role {
            Some(r) => write!(f, "{r}")?,
            None => f.write_str("-")?,
        }
        f.write_str(", ")?;
        match &self.purpose {
            Some(p) => write!(f, "{p}")?,
            None => f.write_str("-")?,
        }
        f.write_str(")")
    }
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Threshold::Count(n) => write!(f, "{n}"),
            Threshold::All => f.write_str("ALL"),
        }
    }
}

impl fmt::Display for AuditExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.neg_role_purpose.is_empty() {
            f.write_str("Neg-Role-Purpose ")?;
            write_list(f, &self.neg_role_purpose)?;
            f.write_str(" ")?;
        }
        if !self.pos_role_purpose.is_empty() {
            f.write_str("Pos-Role-Purpose ")?;
            write_list(f, &self.pos_role_purpose)?;
            f.write_str(" ")?;
        }
        if !self.neg_users.is_empty() {
            f.write_str("Neg-User-Identity ")?;
            write_list(f, &self.neg_users)?;
            f.write_str(" ")?;
        }
        if !self.pos_users.is_empty() {
            f.write_str("Pos-User-Identity ")?;
            write_list(f, &self.pos_users)?;
            f.write_str(" ")?;
        }
        if !self.otherthan_purposes.is_empty() {
            f.write_str("OTHERTHAN PURPOSE ")?;
            write_list(f, &self.otherthan_purposes)?;
            f.write_str(" ")?;
        }
        if let Some(iv) = &self.during {
            write!(f, "DURING {iv} ")?;
        }
        if let Some(iv) = &self.data_interval {
            write!(f, "DATA-INTERVAL {iv} ")?;
        }
        if self.threshold != Threshold::default() {
            write!(f, "THRESHOLD {} ", self.threshold)?;
        }
        if !self.indispensable {
            f.write_str("INDISPENSABLE false ")?;
        }
        write!(f, "AUDIT {} FROM ", self.audit)?;
        write_list(f, &self.from)?;
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_audit, parse_statement};

    fn round_trip_stmt(src: &str) {
        let a = parse_statement(src).unwrap();
        let printed = a.to_string();
        let b = parse_statement(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(a, b, "print was {printed:?}");
    }

    fn round_trip_audit(src: &str) {
        let a = parse_audit(src).unwrap();
        let printed = a.to_string();
        let b = parse_audit(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(a, b, "print was {printed:?}");
    }

    #[test]
    fn select_round_trips() {
        round_trip_stmt("SELECT zipcode FROM Patients WHERE disease = 'cancer'");
        round_trip_stmt(
            "SELECT DISTINCT p.name AS n, * FROM Patients AS p, Visits WHERE p.id = Visits.pid",
        );
        round_trip_stmt("SELECT a FROM t WHERE (x = 1 OR y = 2) AND NOT z = 3");
        round_trip_stmt("SELECT a FROM t WHERE x BETWEEN 1 AND 2 AND y NOT IN (1, 2, 3)");
        round_trip_stmt("SELECT a FROM t WHERE name LIKE 'J%' AND v IS NOT NULL");
        round_trip_stmt("SELECT a FROM t WHERE -x + 3 * y > 0");
        round_trip_stmt("SELECT a FROM t WHERE x - (y - z) = 0");
    }

    #[test]
    fn dml_round_trips() {
        round_trip_stmt("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        round_trip_stmt("UPDATE t SET a = a + 1 WHERE b = TRUE");
        round_trip_stmt("DELETE FROM t WHERE a IS NULL");
        round_trip_stmt("CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL, e TIMESTAMP)");
    }

    #[test]
    fn reserved_identifiers_print_quoted() {
        round_trip_stmt("SELECT \"select\" FROM \"from\"");
    }

    #[test]
    fn audit_round_trips() {
        round_trip_audit("AUDIT disease FROM Patients WHERE zipcode = '120016'");
        round_trip_audit(
            "Neg-Role-Purpose (nurse, billing) (-, marketing) Pos-User-Identity u-1 \
             DURING 1/1/2004 TO 31/12/2004:23-59-59 DATA-INTERVAL 1/5/2004:13-00-00 TO now() \
             THRESHOLD ALL INDISPENSABLE false \
             AUDIT (name, disease), [zipcode, salary] FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid AND salary > 10000",
        );
        round_trip_audit("AUDIT [*] FROM P-Personal, P-Health, P-Employ WHERE name = 'Reku'");
        round_trip_audit("OTHERTHAN PURPOSE marketing AUDIT a FROM t");
        round_trip_audit("THRESHOLD 7 AUDIT [(a, b)], c FROM t");
    }

    #[test]
    fn float_literals_round_trip() {
        round_trip_stmt("SELECT a FROM t WHERE x = 3.0 AND y = 0.25");
    }
}
