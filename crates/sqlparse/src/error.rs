//! Parse errors with source spans.

use std::fmt;

/// A half-open byte range into the source text, with 1-based line/column of
/// its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub column: u32,
}

impl Span {
    /// A span covering the very beginning of the input.
    pub fn start() -> Self {
        Span { start: 0, end: 0, line: 1, column: 1 }
    }

    /// Merges two spans into the smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        let (first, last) = if self.start <= other.start { (self, other) } else { (other, self) };
        Span {
            start: first.start,
            end: last.end.max(first.end),
            line: first.line,
            column: first.column,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// An error produced while lexing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the source it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates a new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_spans() {
        let a = Span { start: 5, end: 8, line: 1, column: 6 };
        let b = Span { start: 0, end: 3, line: 1, column: 1 };
        let m = a.merge(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 8);
        assert_eq!(m.column, 1);
    }

    #[test]
    fn merge_contained_span_keeps_outer_end() {
        let outer = Span { start: 0, end: 10, line: 1, column: 1 };
        let inner = Span { start: 2, end: 4, line: 1, column: 3 };
        assert_eq!(outer.merge(inner).end, 10);
    }

    #[test]
    fn display_mentions_position() {
        let err = ParseError::new("boom", Span { start: 3, end: 4, line: 2, column: 7 });
        assert_eq!(err.to_string(), "boom at line 2, column 7");
    }
}
