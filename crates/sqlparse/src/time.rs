//! Civil-time handling without external crates.
//!
//! The paper writes timestamps as `1/5/2004:13-00-00` (day/month/year with a
//! `HH-MM-SS` time part, see its §3.1 DATA-INTERVAL example) and uses the
//! marker `now()` for the current instant. This module provides a compact
//! [`Timestamp`] (seconds since the Unix epoch, UTC) plus conversions to and
//! from civil date-time fields using Howard Hinnant's `days_from_civil`
//! algorithm, so the whole workspace can stay dependency-free on time.

use std::fmt;

/// Seconds since `1970-01-01T00:00:00Z`. May be negative for earlier dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// Number of days since the epoch for a civil date (proleptic Gregorian).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Timestamp {
    /// Builds a timestamp from civil UTC fields; `None` if any field is out
    /// of range (month 1–12, day valid for month, h < 24, m/s < 60).
    pub fn from_ymd_hms(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
    ) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        if hour >= 24 || min >= 60 || sec >= 60 {
            return None;
        }
        let days = days_from_civil(year, month, day);
        Some(Timestamp(days * 86_400 + hour as i64 * 3_600 + min as i64 * 60 + sec as i64))
    }

    /// Midnight at the start of the given civil date.
    pub fn from_ymd(year: i64, month: u32, day: u32) -> Option<Self> {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Decomposes into `(year, month, day, hour, minute, second)` in UTC.
    pub fn to_civil(self) -> (i64, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        (y, m, d, (secs / 3_600) as u32, (secs % 3_600 / 60) as u32, (secs % 60) as u32)
    }

    /// Midnight at the start of this timestamp's UTC day — the paper's
    /// "current date:00-00-00" default interval start.
    pub fn start_of_day(self) -> Timestamp {
        Timestamp(self.0.div_euclid(86_400) * 86_400)
    }

    /// The wall-clock "current time" (`now()` in the paper's grammar).
    pub fn now() -> Timestamp {
        use std::time::{SystemTime, UNIX_EPOCH};
        let secs =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs() as i64).unwrap_or(0);
        Timestamp(secs)
    }

    /// Adds a number of seconds (may be negative).
    pub fn plus_seconds(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Parses the paper's unquoted literal form `D/M/YYYY[:HH-MM-SS]` as well
    /// as ISO-ish quoted forms `YYYY-MM-DD[ HH:MM:SS]` / `YYYY-MM-DDTHH:MM:SS`.
    pub fn parse(text: &str) -> Option<Timestamp> {
        let text = text.trim();
        if let Some(ts) = Self::parse_paper_format(text) {
            return Some(ts);
        }
        Self::parse_iso(text)
    }

    fn parse_paper_format(text: &str) -> Option<Timestamp> {
        // D/M/YYYY or D/M/YYYY:HH-MM-SS
        let (date, time) = match text.split_once(':') {
            Some((d, t)) => (d, Some(t)),
            None => (text, None),
        };
        let mut it = date.split('/');
        let day: u32 = it.next()?.trim().parse().ok()?;
        let month: u32 = it.next()?.trim().parse().ok()?;
        let year: i64 = it.next()?.trim().parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        let (h, mi, s) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let mut parts = t.split('-');
                let h: u32 = parts.next()?.trim().parse().ok()?;
                let mi: u32 = parts.next()?.trim().parse().ok()?;
                let s: u32 = parts.next()?.trim().parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                (h, mi, s)
            }
        };
        Timestamp::from_ymd_hms(year, month, day, h, mi, s)
    }

    fn parse_iso(text: &str) -> Option<Timestamp> {
        let (date, time) = if let Some((d, t)) = text.split_once('T') {
            (d, Some(t))
        } else if let Some((d, t)) = text.split_once(' ') {
            (d, Some(t))
        } else {
            (text, None)
        };
        let mut it = date.split('-');
        let year: i64 = it.next()?.trim().parse().ok()?;
        let month: u32 = it.next()?.trim().parse().ok()?;
        let day: u32 = it.next()?.trim().parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        let (h, mi, s) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let mut parts = t.split(':');
                let h: u32 = parts.next()?.trim().parse().ok()?;
                let mi: u32 = parts.next()?.trim().parse().ok()?;
                let s: u32 = parts.next().map_or(Some(0), |p| p.trim().parse().ok())?;
                (h, mi, s)
            }
        };
        Timestamp::from_ymd_hms(year, month, day, h, mi, s)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_civil();
        // Print in the paper's D/M/YYYY:HH-MM-SS form so printed audit
        // expressions re-parse to the same value.
        write!(f, "{d}/{mo}/{y}:{h:02}-{mi:02}-{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_round_trips() {
        let t = Timestamp(0);
        assert_eq!(t.to_civil(), (1970, 1, 1, 0, 0, 0));
    }

    #[test]
    fn paper_example_timestamp() {
        // 1/5/2004:13-00-00 = 1 May 2004 13:00:00 UTC.
        let t = Timestamp::parse("1/5/2004:13-00-00").unwrap();
        assert_eq!(t.to_civil(), (2004, 5, 1, 13, 0, 0));
    }

    #[test]
    fn paper_date_without_time_is_midnight() {
        let t = Timestamp::parse("14/12/2000").unwrap();
        assert_eq!(t.to_civil(), (2000, 12, 14, 0, 0, 0));
    }

    #[test]
    fn iso_forms_parse() {
        let a = Timestamp::parse("2004-05-01 13:00:00").unwrap();
        let b = Timestamp::parse("2004-05-01T13:00:00").unwrap();
        let c = Timestamp::parse("1/5/2004:13-00-00").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn iso_minutes_only() {
        let t = Timestamp::parse("2004-05-01 13:05").unwrap();
        assert_eq!(t.to_civil(), (2004, 5, 1, 13, 5, 0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Timestamp::parse("not a date").is_none());
        assert!(Timestamp::parse("32/1/2020").is_none());
        assert!(Timestamp::parse("1/13/2020").is_none());
        assert!(Timestamp::parse("29/2/2021").is_none());
        assert!(Timestamp::parse("1/1/2020:25-00-00").is_none());
    }

    #[test]
    fn leap_years() {
        assert!(Timestamp::parse("29/2/2020").is_some());
        assert!(Timestamp::parse("29/2/2000").is_some());
        assert!(Timestamp::parse("29/2/1900").is_none());
    }

    #[test]
    fn civil_round_trip_sweep() {
        // Every 1000009 seconds across ±40 years round-trips exactly.
        let mut t = -40 * 365 * 86_400i64;
        while t < 40 * 365 * 86_400 {
            let ts = Timestamp(t);
            let (y, mo, d, h, mi, s) = ts.to_civil();
            assert_eq!(Timestamp::from_ymd_hms(y, mo, d, h, mi, s), Some(ts));
            t += 1_000_009;
        }
    }

    #[test]
    fn display_round_trips() {
        let t = Timestamp::from_ymd_hms(2004, 5, 1, 13, 0, 0).unwrap();
        assert_eq!(Timestamp::parse(&t.to_string()), Some(t));
    }

    #[test]
    fn start_of_day_truncates() {
        let t = Timestamp::from_ymd_hms(2004, 5, 1, 13, 30, 59).unwrap();
        assert_eq!(t.start_of_day().to_civil(), (2004, 5, 1, 0, 0, 0));
        // Negative timestamps truncate toward the day start too.
        let neg = Timestamp::from_ymd_hms(1969, 12, 31, 5, 0, 0).unwrap();
        assert_eq!(neg.start_of_day().to_civil(), (1969, 12, 31, 0, 0, 0));
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::from_ymd(1999, 12, 31).unwrap();
        let b = Timestamp::from_ymd(2000, 1, 1).unwrap();
        assert!(a < b);
    }
}
