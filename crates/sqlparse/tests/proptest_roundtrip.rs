//! Property tests: `parse(print(ast)) == ast` for generated statements and
//! audit expressions, plus timestamp round-trips.

use audex_sql::ast::*;
use audex_sql::{parse_audit, parse_statement, Timestamp};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = Ident> {
    // Bare lexable words, hyphenated paper-style names, and quoted oddballs.
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(Ident::new),
        "[A-Z][a-z]{1,4}-[A-Z][a-z]{1,6}".prop_map(Ident::new),
        "[a-z]{1,6}".prop_map(|s| Ident::quoted(format!("{s} x"))),
        Just(Ident::quoted("select")),
    ]
}

fn column_strategy() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident_strategy()), ident_strategy())
        .prop_map(|(table, column)| ColumnRef { table, column })
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
        // Non-negative: the lexer produces unsigned literals (a leading `-`
        // parses as unary negation), so only these are parser-producible.
        (0i64..=i64::from(i32::MAX)).prop_map(Literal::Int),
        // Floats that print with a decimal point and reparse exactly;
        // negative floats print behind unary minus so keep them positive.
        (0i32..100_000, 1u32..100).prop_map(|(a, b)| Literal::Float(a as f64 + 1.0 / b as f64)),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::Str),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        column_strategy().prop_map(Expr::Column),
        literal_strategy().prop_map(Expr::Literal),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Eq),
                    Just(BinOp::NotEq),
                    Just(BinOp::Lt),
                    Just(BinOp::LtEq),
                    Just(BinOp::Gt),
                    Just(BinOp::GtEq),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                ]
            )
                .prop_map(|(l, r, op)| Expr::binary(l, op, r)),
            (inner.clone(), prop_oneof![Just(UnaryOp::Not), Just(UnaryOp::Neg)])
                .prop_map(|(e, op)| Expr::Unary { op, expr: Box::new(e) }),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, negated)| Expr::IsNull { expr: Box::new(e), negated }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated
                }
            ),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList { expr: Box::new(e), list, negated }),
            (inner.clone(), "[a-zA-Z%_]{1,6}", any::<bool>()).prop_map(|(e, p, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(Expr::Literal(Literal::Str(p))),
                    negated,
                }
            }),
        ]
    })
}

fn table_ref_strategy() -> impl Strategy<Value = TableRef> {
    (ident_strategy(), proptest::option::of(ident_strategy()))
        .prop_map(|(name, alias)| TableRef { name, alias })
}

fn select_strategy() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        proptest::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                ident_strategy().prop_map(SelectItem::QualifiedWildcard),
                (expr_strategy(), proptest::option::of(ident_strategy()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            ],
            1..4,
        ),
        proptest::collection::vec(table_ref_strategy(), 1..4),
        proptest::option::of(expr_strategy()),
        proptest::collection::vec(
            (expr_strategy(), any::<bool>()).prop_map(|(expr, asc)| OrderItem { expr, asc }),
            0..3,
        ),
        proptest::option::of(0u64..1000),
    )
        .prop_map(|(distinct, projection, from, selection, order_by, limit)| Query {
            distinct,
            projection,
            from,
            selection,
            order_by,
            limit,
        })
}

fn attr_spec_strategy() -> impl Strategy<Value = AttrSpec> {
    let item = prop_oneof![
        column_strategy().prop_map(|c| AttrNode::Item(AttrItem::Column(c))),
        Just(AttrNode::Item(AttrItem::Star)),
    ];
    let node = item.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4)
                .prop_map(|m| AttrNode::Group(AttrGroup::Mandatory(m))),
            proptest::collection::vec(inner, 1..4)
                .prop_map(|m| AttrNode::Group(AttrGroup::Optional(m))),
        ]
    });
    proptest::collection::vec(node, 1..4).prop_map(|nodes| AttrSpec { nodes })
}

fn ts_strategy() -> impl Strategy<Value = Timestamp> {
    // 1970..~2100, whole seconds.
    (0i64..4_102_444_800).prop_map(Timestamp)
}

fn interval_strategy() -> impl Strategy<Value = TimeInterval> {
    let spec = prop_oneof![Just(TsSpec::Now), ts_strategy().prop_map(TsSpec::At)];
    (spec.clone(), spec).prop_map(|(start, end)| TimeInterval { start, end })
}

fn audit_strategy() -> impl Strategy<Value = AuditExpr> {
    let pattern = prop_oneof![
        (ident_strategy(), ident_strategy())
            .prop_map(|(r, p)| RolePurposePattern { role: Some(r), purpose: Some(p) }),
        ident_strategy().prop_map(|r| RolePurposePattern { role: Some(r), purpose: None }),
        ident_strategy().prop_map(|p| RolePurposePattern { role: None, purpose: Some(p) }),
    ];
    (
        (
            proptest::collection::vec(pattern.clone(), 0..3),
            proptest::collection::vec(pattern, 0..3),
            proptest::collection::vec(ident_strategy(), 0..3),
            proptest::collection::vec(ident_strategy(), 0..3),
            proptest::collection::vec(ident_strategy(), 0..2),
        ),
        proptest::option::of(interval_strategy()),
        proptest::option::of(interval_strategy()),
        prop_oneof![(1u64..100).prop_map(Threshold::Count), Just(Threshold::All)],
        any::<bool>(),
        attr_spec_strategy(),
        proptest::collection::vec(table_ref_strategy(), 1..4),
        proptest::option::of(expr_strategy()),
    )
        .prop_map(
            |(
                (neg_rp, pos_rp, neg_users, pos_users, otherthan),
                during,
                data_interval,
                threshold,
                indispensable,
                audit,
                from,
                selection,
            )| AuditExpr {
                neg_role_purpose: neg_rp,
                pos_role_purpose: pos_rp,
                neg_users,
                pos_users,
                otherthan_purposes: otherthan,
                during,
                data_interval,
                threshold,
                indispensable,
                audit,
                from,
                selection,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn select_round_trips(q in select_strategy()) {
        let printed = Statement::Select(q.clone()).to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        prop_assert_eq!(Statement::Select(q), reparsed, "printed: {}", printed);
    }

    #[test]
    fn audit_round_trips(a in audit_strategy()) {
        let printed = a.to_string();
        let reparsed = parse_audit(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        prop_assert_eq!(a, reparsed, "printed: {}", printed);
    }

    #[test]
    fn timestamps_round_trip_civil(t in ts_strategy()) {
        let (y, mo, d, h, mi, s) = t.to_civil();
        prop_assert_eq!(Timestamp::from_ymd_hms(y, mo, d, h, mi, s), Some(t));
        prop_assert_eq!(Timestamp::parse(&t.to_string()), Some(t));
    }

    #[test]
    fn expr_printing_is_stable(e in expr_strategy()) {
        // print ∘ parse ∘ print = print (idempotent rendering).
        let once = e.to_string();
        let sql = format!("SELECT a FROM t WHERE {once}");
        if let Ok(stmt) = parse_statement(&sql) {
            let twice = match stmt {
                Statement::Select(q) => q.selection.unwrap().to_string(),
                _ => unreachable!(),
            };
            prop_assert_eq!(once, twice);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The front end never panics on arbitrary input — it returns errors.
    #[test]
    fn parser_never_panics_on_garbage(input in ".{0,200}") {
        let _ = parse_statement(&input);
        let _ = parse_audit(&input);
        let _ = audex_sql::parse_script(&input);
    }

    /// Nor on arbitrary ASCII with SQL-ish tokens sprinkled in.
    #[test]
    fn parser_never_panics_on_sqlish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("FROM".to_string()), Just("WHERE".to_string()),
                Just("AUDIT".to_string()), Just("(".to_string()), Just(")".to_string()),
                Just("[".to_string()), Just("]".to_string()), Just(",".to_string()),
                Just("'".to_string()), Just("=".to_string()), Just("--".to_string()),
                Just("/*".to_string()), Just("DURING".to_string()), Just("now()".to_string()),
                "[a-zA-Z0-9_-]{1,8}".prop_map(|s| s),
                "[0-9]{1,6}".prop_map(|s| s),
            ],
            0..30,
        )
    ) {
        let input = words.join(" ");
        let _ = parse_statement(&input);
        let _ = parse_audit(&input);
    }
}
