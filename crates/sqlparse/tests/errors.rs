//! Error-path coverage for the front end: every rejection carries a useful
//! message anchored at the right source position.

use audex_sql::{parse_audit, parse_query, parse_script, parse_statement};

fn err_of_query(sql: &str) -> audex_sql::ParseError {
    parse_query(sql).expect_err("should fail")
}

fn err_of_audit(text: &str) -> audex_sql::ParseError {
    parse_audit(text).expect_err("should fail")
}

#[test]
fn missing_from() {
    let e = err_of_query("SELECT a");
    assert!(e.message.contains("FROM"), "{e}");
}

#[test]
fn dangling_comma_in_projection() {
    let e = err_of_query("SELECT a, FROM t");
    assert!(e.message.contains("expression") || e.message.contains("keyword"), "{e}");
}

#[test]
fn reserved_word_as_table() {
    let e = err_of_query("SELECT a FROM where");
    assert!(e.message.contains("reserved"), "{e}");
}

#[test]
fn unbalanced_parens() {
    assert!(parse_query("SELECT a FROM t WHERE (a = 1").is_err());
    assert!(parse_query("SELECT a FROM t WHERE a = 1)").is_err());
}

#[test]
fn position_points_at_offender() {
    let e = err_of_query("SELECT a FROM t WHERE a = ");
    assert_eq!(e.span.line, 1);
    assert!(e.span.column >= 26, "{e:?}");

    let e = err_of_query("SELECT a\nFROM t\nWHERE ???");
    assert_eq!(e.span.line, 3, "{e:?}");
}

#[test]
fn bad_between() {
    let e = err_of_query("SELECT a FROM t WHERE a BETWEEN 1 OR 2");
    assert!(e.message.to_lowercase().contains("and"), "{e}");
}

#[test]
fn not_without_operator() {
    let e = err_of_query("SELECT a FROM t WHERE a NOT 5");
    assert!(e.message.contains("LIKE"), "{e}");
}

#[test]
fn is_requires_null() {
    let e = err_of_query("SELECT a FROM t WHERE a IS 5");
    assert!(e.message.to_lowercase().contains("null"), "{e}");
}

#[test]
fn trailing_garbage_rejected() {
    let e = err_of_query("SELECT a FROM t banana extra");
    assert!(e.message.contains("trailing") || e.message.contains("expected"), "{e}");
}

#[test]
fn statement_dispatch_error_lists_options() {
    let e = parse_statement("DROP TABLE t").unwrap_err();
    assert!(e.message.contains("SELECT"), "{e}");
    assert!(e.message.contains("CREATE TABLE"), "{e}");
}

#[test]
fn script_propagates_inner_error() {
    let e = parse_script("CREATE TABLE t (a INT); SELEC b FROM t;").unwrap_err();
    assert!(e.span.start > 20, "{e:?}");
}

#[test]
fn audit_unknown_clause() {
    let e = err_of_audit("FROBNICATE x AUDIT a FROM t");
    assert!(e.message.contains("audit clause"), "{e}");
}

#[test]
fn audit_missing_from() {
    let e = err_of_audit("AUDIT a, b");
    assert!(e.message.contains("FROM"), "{e}");
}

#[test]
fn audit_bad_threshold() {
    assert!(parse_audit("THRESHOLD banana AUDIT a FROM t").is_err());
    assert!(parse_audit("THRESHOLD -1 AUDIT a FROM t").is_err());
}

#[test]
fn audit_bad_indispensable() {
    let e = err_of_audit("INDISPENSABLE maybe AUDIT a FROM t");
    assert!(e.message.contains("true or false"), "{e}");
}

#[test]
fn audit_malformed_role_purpose() {
    assert!(parse_audit("Neg-Role-Purpose (r pr) AUDIT a FROM t").is_err());
    assert!(parse_audit("Neg-Role-Purpose r, pr AUDIT a FROM t").is_err());
    let e = err_of_audit("Neg-Role-Purpose AUDIT a FROM t");
    assert!(e.message.contains("at least one"), "{e}");
}

#[test]
fn audit_empty_user_list() {
    let e = err_of_audit("Pos-User-Identity AUDIT a FROM t");
    assert!(e.message.contains("at least one"), "{e}");
}

#[test]
fn audit_interval_requires_to() {
    let e = err_of_audit("DURING 1/1/2008 UNTIL 2/1/2008 AUDIT a FROM t");
    assert!(e.message.contains("TO"), "{e}");
}

#[test]
fn audit_rejects_day_month_swap() {
    // 13 as a month must be rejected, not silently swapped.
    assert!(parse_audit("DURING 1/13/2008 TO now() AUDIT a FROM t").is_err());
}

#[test]
fn audit_empty_group() {
    assert!(parse_audit("AUDIT () FROM t").is_err());
    assert!(parse_audit("AUDIT [] FROM t").is_err());
}

#[test]
fn lexer_errors_propagate() {
    assert!(parse_query("SELECT a FROM t WHERE a = 'unterminated").is_err());
    assert!(parse_query("SELECT ~a FROM t").is_err());
    assert!(parse_query("SELECT a FROM t WHERE a ! b").is_err());
}

#[test]
fn error_display_includes_location() {
    let e = err_of_query("SELECT a FROM t WHERE a = ");
    let text = e.to_string();
    assert!(text.contains("line 1"), "{text}");
    assert!(text.contains("column"), "{text}");
}

#[test]
fn empty_input() {
    assert!(parse_statement("").is_err());
    assert!(parse_audit("").is_err());
    assert!(parse_script("").unwrap().is_empty());
}

#[test]
fn now_requires_parens() {
    assert!(parse_audit("DURING now TO now() AUDIT a FROM t").is_err());
    assert!(parse_audit("DURING now( TO now() AUDIT a FROM t").is_err());
}
